"""Asyncio front door: the live serving node behind a TCP socket.

``python -m repro serve`` hosts a :class:`~repro.runtime.node.
ServingNode` — and through it the real :class:`~repro.engine.executor.
Engine` — behind a newline-delimited-JSON TCP protocol built on
nothing but asyncio (no new dependencies). One request per line::

    {"id": 1, "op": "search", "query_index": 42}
    {"id": 2, "op": "stats", "rate": 800.0}
    {"id": 3, "op": "ping"}

and one JSON reply per request (``id`` echoes the request; replies may
arrive out of order because each search is handled by its own task).
Search replies carry the query's outcome — completed with latency,
degree, and ranked results in engine mode, or shed with the kernel's
reason — and ``stats`` returns the node's counters plus, when a rate
is supplied, the full shared :class:`~repro.sim.experiment.
LoadPointSummary` schema.

Two scheduler hostings, same node code:

* :class:`AsyncioScheduler` — wall time from the running event loop,
  optionally *dilated*: with ``dilation=20`` one model second takes 20
  wall seconds, which shrinks event-loop jitter twentyfold in model
  units. That is what makes live smoke runs comparable to simulator
  predictions on a noisy CI machine while keeping every model-seconds
  quantity (deadlines, latencies, metrics windows) untouched.
* :class:`~repro.runtime.clock.FakeClock` — tests instantiate
  :class:`LiveServer` on one and advance time by hand: entire query
  lifecycles execute deterministically with zero real sleeps.

Deadline discipline (reprolint R019): every awaited read, drain, and
connection-shutdown call is bounded by ``asyncio.wait_for``; each
search waits on its completion future under a budget derived from the
request (model seconds, converted to wall seconds through the
dilation); connection tasks are tracked per connection and cancelled
on hangup.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Set

from repro.errors import SimulationError
from repro.runtime.node import QueryOutcome, ServingNode
from repro.util.serde import to_jsonable
from repro.util.validation import require_positive

__all__ = ["AsyncioScheduler", "LiveServer"]

#: Wall-seconds bound on binding the listening socket.
_BIND_TIMEOUT_S = 10.0
#: Wall-seconds bound on flushing / closing a connection.
_CLOSE_TIMEOUT_S = 5.0


class AsyncioScheduler:
    """The kernel's scheduler interface on a running asyncio loop.

    Satisfies :class:`repro.core.clock.SchedulerProtocol` structurally.
    ``now`` is the loop's monotonic time zeroed at construction and
    divided by ``dilation``; ``schedule`` multiplies model delays back
    up to wall delays. ``dilation`` therefore changes how long a model
    second *takes*, never what the kernel *sees* — decisions, metrics,
    and deadlines all stay in model seconds.
    """

    __slots__ = ("_loop", "_origin", "_dilation")

    def __init__(
        self,
        dilation: float = 1.0,
        loop: Optional[asyncio.AbstractEventLoop] = None,
    ) -> None:
        require_positive(dilation, "dilation")
        self._loop = loop if loop is not None else asyncio.get_running_loop()
        self._dilation = float(dilation)
        self._origin = self._loop.time()

    @property
    def dilation(self) -> float:
        return self._dilation

    @property
    def now(self) -> float:
        """Model seconds since construction."""
        return (self._loop.time() - self._origin) / self._dilation

    def schedule(self, delay_s: float, callback: Any) -> None:
        """Run ``callback`` after ``delay_s`` *model* seconds."""
        if delay_s < 0:
            raise SimulationError(f"cannot schedule {delay_s}s in the past")
        self._loop.call_later(delay_s * self._dilation, callback)

    def to_wall(self, model_seconds: float) -> float:
        """Convert a model-seconds span to wall seconds."""
        return model_seconds * self._dilation

    def __repr__(self) -> str:
        return f"AsyncioScheduler(now={self.now:.6f}, dilation={self._dilation})"


class LiveServer:
    """Newline-delimited-JSON TCP front door over one serving node.

    Instantiate *inside* a running event loop (as :mod:`repro.cli`'s
    ``serve`` command and the smoke harness do): the readiness and
    shutdown events must bind to the loop that will serve, which on
    Python 3.9 means the loop must already be running at construction.
    """

    def __init__(
        self,
        node: ServingNode,
        dilation: float = 1.0,
        request_budget_s: float = 60.0,
        idle_timeout_s: float = 300.0,
        results_limit: int = 10,
    ) -> None:
        """``request_budget_s`` is the default per-search completion
        budget in *model* seconds (a request may lower it with its own
        ``budget_s`` field); ``idle_timeout_s`` is the wall-seconds
        quiet period after which a connection is hung up."""
        require_positive(request_budget_s, "request_budget_s")
        require_positive(idle_timeout_s, "idle_timeout_s")
        self.node = node
        self.dilation = float(dilation)
        self.request_budget_s = float(request_budget_s)
        self.idle_timeout_s = float(idle_timeout_s)
        self.results_limit = int(results_limit)
        self.port: Optional[int] = None
        self._ready = asyncio.Event()
        self._shutdown = asyncio.Event()
        self._rates_seen: Dict[str, float] = {}

    # ----------------------------------------------------------------
    # Lifecycle
    # ----------------------------------------------------------------

    def request_shutdown(self) -> None:
        """Stop accepting and return from :meth:`serve` (idempotent)."""
        self._shutdown.set()

    async def wait_ready(self, timeout_s: float = _BIND_TIMEOUT_S) -> int:
        """Block until the listening socket is bound; returns the port."""
        await asyncio.wait_for(self._ready.wait(), timeout=timeout_s)
        assert self.port is not None
        return self.port

    async def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        duration_s: Optional[float] = None,
    ) -> None:
        """Accept connections until shutdown is requested (by the
        ``shutdown`` op or :meth:`request_shutdown`) or ``duration_s``
        wall seconds elapse."""
        server = await asyncio.wait_for(
            asyncio.start_server(self._handle_connection, host, port),
            timeout=_BIND_TIMEOUT_S,
        )
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            if duration_s is None:
                await self._shutdown.wait()
            else:
                try:
                    await asyncio.wait_for(
                        self._shutdown.wait(), timeout=duration_s
                    )
                except asyncio.TimeoutError:
                    pass
        finally:
            server.close()
            try:
                await asyncio.wait_for(
                    server.wait_closed(), timeout=_CLOSE_TIMEOUT_S
                )
            except asyncio.TimeoutError:
                pass

    # ----------------------------------------------------------------
    # Connection handling
    # ----------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        tasks: Set["asyncio.Task[None]"] = set()
        write_lock = asyncio.Lock()
        loop = asyncio.get_running_loop()
        try:
            while not self._shutdown.is_set():
                try:
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=self.idle_timeout_s
                    )
                except asyncio.TimeoutError:
                    break  # idle connection: hang up
                if not line:
                    break  # client closed
                # One task per request so slow searches never head-of-
                # line-block the next request on this connection.
                task = loop.create_task(
                    self._handle_line(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            if tasks:
                budget = self.request_budget_s * self.dilation + _CLOSE_TIMEOUT_S
                try:
                    await asyncio.wait_for(
                        asyncio.gather(*tasks, return_exceptions=True),
                        timeout=budget,
                    )
                except asyncio.TimeoutError:
                    for task in tasks:
                        task.cancel()
            writer.close()
            try:
                await asyncio.wait_for(
                    writer.wait_closed(), timeout=_CLOSE_TIMEOUT_S
                )
            except (asyncio.TimeoutError, OSError):
                pass

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        try:
            message = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            message = None
        if not isinstance(message, dict):
            reply: Dict[str, Any] = {"id": None, "ok": False, "error": "bad-json"}
        else:
            reply = await self._dispatch(message)
        data = (json.dumps(reply, sort_keys=True) + "\n").encode("utf-8")
        async with write_lock:
            writer.write(data)
            await asyncio.wait_for(writer.drain(), timeout=_CLOSE_TIMEOUT_S)

    # ----------------------------------------------------------------
    # Operations
    # ----------------------------------------------------------------

    async def _dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op")
        request_id = message.get("id")
        if op == "ping":
            return {
                "id": request_id,
                "ok": True,
                "op": "ping",
                "now_s": self.node.scheduler.now,
            }
        if op == "stats":
            return self._stats_reply(request_id, message)
        if op == "shutdown":
            self.request_shutdown()
            return {"id": request_id, "ok": True, "op": "shutdown"}
        if op == "search":
            return await self._search(request_id, message)
        return {"id": request_id, "ok": False, "error": f"unknown-op:{op!r}"}

    def _stats_reply(
        self, request_id: Any, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        node = self.node
        reply: Dict[str, Any] = {
            "id": request_id,
            "ok": True,
            "op": "stats",
            "now_s": node.scheduler.now,
            "n_queries": node.oracle.n_queries,
            "n_cores": node.config.n_cores,
            "policy": node.policy.name,
            "n_observed": node.metrics.n_observed,
            "n_answered": node.n_answered,
            "n_shed": node.server.n_shed,
            "queue_length": node.server.queue_length,
            "n_running": node.server.n_running,
        }
        rate = message.get("rate")
        if rate is not None:
            reply["summary"] = to_jsonable(node.summary(float(rate)))
        return reply

    async def _search(
        self, request_id: Any, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        query_index = message.get("query_index")
        if not isinstance(query_index, int) or not (
            0 <= query_index < self.node.oracle.n_queries
        ):
            return {
                "id": request_id,
                "ok": False,
                "error": f"bad-query-index:{query_index!r}",
            }
        budget_s = message.get("budget_s", self.request_budget_s)
        if not isinstance(budget_s, (int, float)) or budget_s <= 0:
            return {"id": request_id, "ok": False, "error": "bad-budget"}
        query_class = message.get("query_class")

        loop = asyncio.get_running_loop()
        future: "asyncio.Future[QueryOutcome]" = loop.create_future()

        def resolve(outcome: QueryOutcome) -> None:
            # May fire synchronously inside submit() (admission shed) or
            # later from a scheduler callback; either way exactly once.
            if not future.done():
                future.set_result(outcome)

        self.node.submit(query_index, on_done=resolve, query_class=query_class)
        try:
            outcome = await asyncio.wait_for(
                future, timeout=float(budget_s) * self.dilation
            )
        except asyncio.TimeoutError:
            return {"id": request_id, "ok": False, "error": "timeout"}
        return self._outcome_reply(request_id, outcome)

    def _outcome_reply(
        self, request_id: Any, outcome: QueryOutcome
    ) -> Dict[str, Any]:
        reply: Dict[str, Any] = {
            "id": request_id,
            "ok": True,
            "op": "search",
            "status": outcome.status,
            "query_index": outcome.query_index,
            "arrival_s": outcome.arrival_s,
            "finished_s": outcome.finished_s,
            "latency_s": outcome.latency_s,
        }
        if outcome.status == "completed":
            reply["degree"] = outcome.degree
            if outcome.results is not None:
                reply["results"] = [
                    [doc_id, score]
                    for doc_id, score in outcome.results[: self.results_limit]
                ]
        else:
            reply["shed_reason"] = outcome.shed_reason
        return reply

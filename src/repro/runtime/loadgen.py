"""Load-generator clients for the live serving front door.

Speaks the newline-delimited-JSON protocol of
:class:`~repro.runtime.serve.LiveServer` and replays the *same* seeded
workloads the simulator consumes:

* :func:`replay_open_loop` — open-loop replay of a
  :class:`~repro.sim.script.ScriptedArrival` script (built by
  :func:`~repro.sim.script.build_arrival_script` from the identical
  RNG streams ``run_load_point`` uses). Requests are paced to the
  scripted arrival times (dilated to wall seconds) over one pipelined
  connection; replies are matched by id, so out-of-order completion is
  fine. This is the paper's model — arrivals independent of service.
* :func:`run_closed_loop` — a fixed client population, each cycling
  submit → wait → think, mirroring
  :func:`~repro.sim.closedloop.run_closed_loop_point`'s semantics for
  live self-throttling comparisons.

Both return the raw reply dicts; the authoritative metrics live
server-side in the node's collector (fetch them with a ``stats``
request, or read the node directly in-process) so simulated and live
load points are summarized by literally the same code path.

Deadline discipline (reprolint R019): connection setup, every reply
read, every drain, and the final teardown are bounded with
``asyncio.wait_for``; the reply-reader task handle is kept and awaited
under a bound.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.sim.script import ScriptedArrival
from repro.util.validation import require_int_in_range, require_positive

__all__ = ["ReplayOptions", "replay_open_loop", "run_closed_loop"]

#: Flush the pipelined writer every this many requests (flow control
#: without a drain round-trip per send).
_DRAIN_EVERY = 64


@dataclass(frozen=True)
class ReplayOptions:
    """Client-side knobs for a replay run."""

    #: Wall seconds per model second — must match the server's.
    dilation: float = 1.0
    #: Per-request completion budget sent to the server (model seconds);
    #: None uses the server default.
    budget_s: Optional[float] = None
    #: Wall-seconds bound on connection setup.
    connect_timeout_s: float = 10.0
    #: Wall-seconds bound on each reply read and each flush.
    reply_timeout_s: float = 120.0

    def __post_init__(self) -> None:
        require_positive(self.dilation, "dilation")
        if self.budget_s is not None:
            require_positive(self.budget_s, "budget_s")
        require_positive(self.connect_timeout_s, "connect_timeout_s")
        require_positive(self.reply_timeout_s, "reply_timeout_s")


def _search_request(
    request_id: int, arrival: ScriptedArrival, options: ReplayOptions
) -> bytes:
    request: Dict[str, Any] = {
        "id": request_id,
        "op": "search",
        "query_index": arrival.query_index,
    }
    if arrival.query_class is not None:
        request["query_class"] = arrival.query_class
    if options.budget_s is not None:
        request["budget_s"] = options.budget_s
    return (json.dumps(request) + "\n").encode("utf-8")


async def _read_replies(
    reader: asyncio.StreamReader, n_expected: int, timeout_s: float
) -> Dict[int, Dict[str, Any]]:
    replies: Dict[int, Dict[str, Any]] = {}
    for _ in range(n_expected):
        line = await asyncio.wait_for(reader.readline(), timeout=timeout_s)
        if not line:
            break  # server hung up; return what we have
        message = json.loads(line.decode("utf-8"))
        replies[message.get("id")] = message
    return replies


async def replay_open_loop(
    host: str,
    port: int,
    script: Sequence[ScriptedArrival],
    options: ReplayOptions = ReplayOptions(),
) -> List[Optional[Dict[str, Any]]]:
    """Replay ``script`` open-loop; returns one reply (or None) per
    arrival, in script order. Pacing is best-effort wall-clock: each
    request is sent at ``arrival.time_s * dilation`` wall seconds after
    the replay starts, falling behind only if the event loop does."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=options.connect_timeout_s
    )
    loop = asyncio.get_running_loop()
    reader_task = loop.create_task(
        _read_replies(reader, len(script), options.reply_timeout_s)
    )
    try:
        origin = loop.time()
        for request_id, arrival in enumerate(script):
            delay = origin + arrival.time_s * options.dilation - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            writer.write(_search_request(request_id, arrival, options))
            if (request_id + 1) % _DRAIN_EVERY == 0:
                await asyncio.wait_for(
                    writer.drain(), timeout=options.reply_timeout_s
                )
        await asyncio.wait_for(writer.drain(), timeout=options.reply_timeout_s)
        replies = await asyncio.wait_for(
            reader_task, timeout=options.reply_timeout_s * len(script) + 1.0
        )
    finally:
        reader_task.cancel()
        writer.close()
        try:
            await asyncio.wait_for(
                writer.wait_closed(), timeout=options.connect_timeout_s
            )
        except (asyncio.TimeoutError, OSError):
            pass
    return [replies.get(i) for i in range(len(script))]


async def _closed_loop_client(
    host: str,
    port: int,
    arrivals: Sequence[ScriptedArrival],
    think_time_s: float,
    options: ReplayOptions,
) -> List[Optional[Dict[str, Any]]]:
    """One closed-loop client: submit, await the reply, think, repeat."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=options.connect_timeout_s
    )
    replies: List[Optional[Dict[str, Any]]] = []
    try:
        for request_id, arrival in enumerate(arrivals):
            writer.write(_search_request(request_id, arrival, options))
            await asyncio.wait_for(
                writer.drain(), timeout=options.reply_timeout_s
            )
            line = await asyncio.wait_for(
                reader.readline(), timeout=options.reply_timeout_s
            )
            if not line:
                replies.append(None)
                break
            replies.append(json.loads(line.decode("utf-8")))
            if think_time_s > 0:
                await asyncio.sleep(think_time_s * options.dilation)
    finally:
        writer.close()
        try:
            await asyncio.wait_for(
                writer.wait_closed(), timeout=options.connect_timeout_s
            )
        except (asyncio.TimeoutError, OSError):
            pass
    return replies


async def run_closed_loop(
    host: str,
    port: int,
    script: Sequence[ScriptedArrival],
    n_clients: int,
    think_time_s: float = 0.0,
    options: ReplayOptions = ReplayOptions(),
) -> List[List[Optional[Dict[str, Any]]]]:
    """Closed-loop population: ``script`` is dealt round-robin to
    ``n_clients`` concurrent clients (scripted times are ignored — in a
    closed loop the *service* paces the clients). Returns each client's
    replies."""
    require_int_in_range(n_clients, "n_clients", low=1)
    if think_time_s < 0:
        raise ValueError(f"think_time_s must be >= 0, got {think_time_s}")
    per_client: List[List[ScriptedArrival]] = [[] for _ in range(n_clients)]
    for i, arrival in enumerate(script):
        per_client[i % n_clients].append(arrival)
    loop = asyncio.get_running_loop()
    tasks = [
        loop.create_task(
            _closed_loop_client(host, port, chunk, think_time_s, options)
        )
        for chunk in per_client
    ]
    bound = options.reply_timeout_s * max(1, len(script)) + 1.0
    results = await asyncio.wait_for(
        asyncio.gather(*tasks, return_exceptions=False), timeout=bound
    )
    return list(results)

"""Wall-clock implementation of the kernel's clock interface."""

from __future__ import annotations

import time

__all__ = ["WallClock"]


class WallClock:
    """Monotonic wall time, zeroed at construction.

    Satisfies :class:`repro.core.clock.ClockProtocol` structurally, so
    kernel code written against the protocol runs unchanged on wall
    time. Built on ``time.monotonic`` — immune to NTP steps and
    daylight-saving jumps, which would otherwise appear as negative or
    hour-long query latencies. Zeroing at construction keeps wall
    timestamps in the same "seconds since the run started" frame the
    virtual clock uses, so metrics and traces are directly comparable
    across drivers.
    """

    __slots__ = ("_origin",)

    def __init__(self) -> None:
        self._origin = time.monotonic()

    @property
    def now(self) -> float:
        return time.monotonic() - self._origin

    def __repr__(self) -> str:
        return f"WallClock(now={self.now:.6f})"

"""Wall-clock and test-clock implementations of the kernel interfaces."""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["WallClock", "FakeClock"]


class WallClock:
    """Monotonic wall time, zeroed at construction.

    Satisfies :class:`repro.core.clock.ClockProtocol` structurally, so
    kernel code written against the protocol runs unchanged on wall
    time. Built on ``time.monotonic`` — immune to NTP steps and
    daylight-saving jumps, which would otherwise appear as negative or
    hour-long query latencies. Zeroing at construction keeps wall
    timestamps in the same "seconds since the run started" frame the
    virtual clock uses, so metrics and traces are directly comparable
    across drivers.
    """

    __slots__ = ("_origin",)

    def __init__(self) -> None:
        self._origin = time.monotonic()

    @property
    def now(self) -> float:
        return time.monotonic() - self._origin

    def __repr__(self) -> str:
        return f"WallClock(now={self.now:.6f})"


class FakeClock:
    """Manually advanced clock *and* scheduler for deterministic tests.

    Satisfies :class:`repro.core.clock.SchedulerProtocol` structurally,
    so everything written against the scheduler interface — the server
    model, online controllers, the anomaly guard, the serving node —
    runs on it unchanged. Unlike the simulator it has no run loop of
    its own: the test advances time explicitly and due callbacks fire
    synchronously inside :meth:`advance_to`, which is what lets asyncio
    server tests execute entire query lifecycles without one real
    sleep.

    Determinism contract (why this is a declared R018 sanitizer): time
    only moves when the test says so, by amounts the test chose; ties
    fire in submission order via a monotone sequence number, exactly
    like the simulator's event heap. Nothing here reads the wall clock,
    the environment, or any RNG.
    """

    __slots__ = ("_now_s", "_heap", "_seq")

    def __init__(self, start_s: float = 0.0) -> None:
        self._now_s = float(start_s)
        # (fire_time_s, submission_seq, callback): the seq breaks ties
        # deterministically and keeps callbacks out of heap comparisons.
        self._heap: List[Tuple[float, int, Callable[[], Any]]] = []
        self._seq = 0

    @property
    def now(self) -> float:
        return self._now_s

    @property
    def pending(self) -> int:
        """Number of callbacks scheduled but not yet fired."""
        return len(self._heap)

    def next_event_s(self) -> Optional[float]:
        """Fire time of the earliest pending callback (None if idle)."""
        return self._heap[0][0] if self._heap else None

    def schedule(self, delay_s: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` after ``delay_s`` fake seconds."""
        if delay_s < 0:
            raise SimulationError(f"cannot schedule {delay_s}s in the past")
        self.schedule_at(self._now_s + float(delay_s), callback)

    def schedule_at(self, time_s: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` at absolute fake time ``time_s``."""
        if time_s < self._now_s:
            raise SimulationError(
                f"cannot schedule at {time_s} before now {self._now_s}"
            )
        heapq.heappush(self._heap, (float(time_s), self._seq, callback))
        self._seq += 1

    def advance_to(self, time_s: float) -> int:
        """Advance to absolute ``time_s``, firing every callback due on
        the way (in fire-time order, submission order on ties; the
        clock reads each callback's own fire time while it runs).
        Returns the number of callbacks fired."""
        if time_s < self._now_s:
            raise SimulationError(
                f"clock cannot run backwards: {time_s} < now {self._now_s}"
            )
        fired = 0
        while self._heap and self._heap[0][0] <= time_s:
            fire_at, _, callback = heapq.heappop(self._heap)
            self._now_s = fire_at
            callback()
            fired += 1
        self._now_s = float(time_s)
        return fired

    def advance_by(self, delta_s: float) -> int:
        """Advance by ``delta_s`` fake seconds (see :meth:`advance_to`)."""
        if delta_s < 0:
            raise SimulationError(f"delta must be >= 0, got {delta_s}")
        return self.advance_to(self._now_s + float(delta_s))

    def drain(self, max_events: int = 1_000_000) -> int:
        """Advance until no callbacks remain (callbacks may schedule
        more; ``max_events`` bounds runaway reschedule loops). Returns
        the number of callbacks fired."""
        fired = 0
        while self._heap:
            if fired >= max_events:
                raise SimulationError(
                    f"FakeClock.drain exceeded {max_events} events"
                )
            next_s = self._heap[0][0]
            fired += self.advance_to(next_s)
        return fired

    def __repr__(self) -> str:
        return f"FakeClock(now={self._now_s:.6f}, pending={len(self._heap)})"

"""One live smoke load point: server + load generator, in process.

:func:`run_live_point` is the wall-clock counterpart of
:func:`~repro.sim.script.run_scripted_point`: it boots a
:class:`~repro.runtime.serve.LiveServer` on an ephemeral localhost
port, replays the given arrival script open-loop through real TCP with
:func:`~repro.runtime.loadgen.replay_open_loop`, shuts the server
down, and returns the node's summary in the shared load-point schema.
Real wall time passes — ``duration × dilation`` seconds — which is why
smoke runs use short horizons and validation happens through the
tolerance bands in :mod:`repro.runtime.parity`, not exact equality.

The experiment harness (``python -m repro livesmoke``) layers point
selection, the simulator reference runs, and report writing on top of
this; keeping this module free of harness imports keeps the runtime
layer's dependency story one-way (reprolint R014).
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional, Sequence, Tuple

from repro.policies.base import ParallelismPolicy
from repro.runtime.loadgen import ReplayOptions, replay_open_loop
from repro.runtime.node import ServingConfig, ServingNode
from repro.runtime.serve import AsyncioScheduler, LiveServer
from repro.sim.experiment import LoadPointConfig, LoadPointSummary
from repro.sim.oracle import ServiceOracle
from repro.sim.script import ScriptedArrival

__all__ = ["run_live_point"]

#: Wall-seconds bound on server startup/shutdown bookkeeping.
_LIFECYCLE_TIMEOUT_S = 15.0


async def run_live_point(
    oracle: ServiceOracle,
    policy: ParallelismPolicy,
    config: LoadPointConfig,
    script: Sequence[ScriptedArrival],
    dilation: float = 1.0,
    engine_search: Optional[Any] = None,
    request_budget_s: Optional[float] = None,
) -> Tuple[LoadPointSummary, ServingNode]:
    """Serve ``script`` over localhost TCP and summarize the node.

    ``request_budget_s`` bounds each request's completion wait in model
    seconds; the default covers the full drain window (10× the
    horizon, matching the simulator's bounded drain) so the open-loop
    client never gives up before the server's own shedding machinery
    has spoken.
    """
    budget_s = (
        config.duration * 10.0 if request_budget_s is None else request_budget_s
    )
    scheduler = AsyncioScheduler(dilation=dilation)
    node = ServingNode(
        scheduler,
        oracle,
        policy,
        ServingConfig(
            n_cores=config.n_cores,
            horizon_s=config.duration,
            warmup_s=config.warmup,
            deadline_s=config.deadline,
            max_queue_length=config.max_queue_length,
            clamp_to_plan=config.clamp_to_plan,
        ),
        engine_search=engine_search,
    )
    service = LiveServer(
        node, dilation=dilation, request_budget_s=budget_s
    )
    loop = asyncio.get_running_loop()
    serve_task = loop.create_task(service.serve("127.0.0.1", 0))
    try:
        port = await service.wait_ready(timeout_s=_LIFECYCLE_TIMEOUT_S)
        options = ReplayOptions(
            dilation=dilation,
            budget_s=budget_s,
            reply_timeout_s=max(120.0, budget_s * dilation + 30.0),
        )
        # Every reply is awaited, so when the replay returns the server
        # has finished (answered or shed) every scripted query.
        await replay_open_loop("127.0.0.1", port, script, options)
    finally:
        service.request_shutdown()
        try:
            await asyncio.wait_for(serve_task, timeout=_LIFECYCLE_TIMEOUT_S)
        except asyncio.TimeoutError:
            serve_task.cancel()
    return node.summary(config.rate), node

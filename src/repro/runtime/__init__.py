"""Wall-clock runtime drivers.

The counterpart of :mod:`repro.sim`: where the simulator drives the
scheduling kernel on virtual time, this package drives it on *wall*
time —

* :class:`~repro.runtime.clock.WallClock` / :class:`~repro.runtime.
  clock.FakeClock` — the live and deterministic-test implementations
  of the kernel's clock interfaces;
* :class:`~repro.runtime.node.ServingNode` — the clock-agnostic server
  model assembled for live serving (engine results, outcome
  callbacks, shared metrics schema);
* :mod:`~repro.runtime.serve` — the asyncio TCP front door and the
  dilated :class:`~repro.runtime.serve.AsyncioScheduler`;
* :mod:`~repro.runtime.loadgen` — open/closed-loop protocol clients
  replaying the simulator's seeded arrival scripts;
* :mod:`~repro.runtime.parity` / :mod:`~repro.runtime.smoke` — the
  sim-vs-live verification tier (exact decision parity on FakeClock,
  tolerance-band smoke validation over real sockets).

Layering (enforced by reprolint R014): ``runtime`` may use the kernel,
models, observability, and the ``sim`` workload/metrics/server-model
modules it rehosts, but neither ``sim`` nor the kernel ever imports
``runtime`` — kernel code only sees
:class:`repro.core.clock.ClockProtocol`.
"""

from repro.runtime.clock import FakeClock, WallClock
from repro.runtime.node import QueryOutcome, ServingConfig, ServingNode

__all__ = [
    "FakeClock",
    "QueryOutcome",
    "ServingConfig",
    "ServingNode",
    "WallClock",
]

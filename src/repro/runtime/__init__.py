"""Wall-clock runtime drivers.

The counterpart of :mod:`repro.sim`: where the simulator drives the
scheduling kernel on virtual time, this package hosts the pieces that
drive it on *wall* time — today just :class:`~repro.runtime.clock.
WallClock`, the live implementation of the kernel's ``ClockProtocol``;
the asyncio serving front door lands here next (see ROADMAP.md).

Layering (enforced by reprolint R014): ``runtime`` may use the kernel,
models, and observability, but the kernel never imports ``runtime`` —
it only ever sees :class:`repro.core.clock.ClockProtocol`.
"""

from repro.runtime.clock import WallClock

__all__ = ["WallClock"]

"""The live serving node: the clock-agnostic server model on any clock.

:class:`~repro.sim.server.IndexServerModel` drives every admission,
deadline, degree-grant, and escalation decision through the pure
kernel in :mod:`repro.core.scheduling` and touches time only through
:class:`~repro.core.clock.SchedulerProtocol`. :class:`ServingNode`
rehosts that exact model outside the simulator: hand it a scheduler —
the asyncio adapter from :mod:`repro.runtime.serve` for live traffic,
a :class:`~repro.runtime.clock.FakeClock` in deterministic tests — and
it serves queries with *the same decision sequence* the simulator
would produce on the same inputs, which is what the parity test tier
pins.

Completion delivery is callback-shaped (``submit`` takes an optional
``on_done``) so the node itself stays synchronous and clock-agnostic;
the asyncio front door adapts callbacks to futures. When an engine
search function is attached, each completed query additionally carries
real ranked results from the hosted
:class:`~repro.engine.executor.Engine` — executed synchronously at
completion time, which at serving scale is sub-millisecond and
documented as outside the timing model (phase durations come from the
measured cost table, exactly as in the simulator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Tuple

from repro.core.clock import SchedulerProtocol
from repro.obs.spans import Tracer
from repro.policies.base import ParallelismPolicy
from repro.sim.experiment import LoadPointConfig, LoadPointSummary, summarize_load_point
from repro.sim.metrics import MetricsCollector, QueryRecord
from repro.sim.oracle import ServiceOracle
from repro.sim.server import IndexServerModel
from repro.util.validation import require, require_int_in_range, require_positive

__all__ = ["ServingConfig", "QueryOutcome", "ServingNode"]

#: Ranked results attached to a completed query in engine mode:
#: ``(doc_id, score)`` pairs, best first.
RankedResults = Tuple[Tuple[int, float], ...]

#: Signature of the per-query completion callback.
OutcomeCallback = Callable[["QueryOutcome"], None]

#: Signature of the optional engine search hook:
#: ``(query_index, degree) -> RankedResults``.
EngineSearch = Callable[[int, int], RankedResults]


@dataclass(frozen=True)
class ServingConfig:
    """Configuration of one live serving node.

    Field semantics match :class:`~repro.sim.experiment.LoadPointConfig`
    (same kernel knobs, same measurement window convention) so a live
    node and a simulated load point can be configured identically.
    """

    n_cores: int = 8
    #: Measurement window for the metrics collector, in model seconds:
    #: stats before ``warmup_s`` / after ``horizon_s`` are discarded.
    horizon_s: float = 60.0
    warmup_s: float = 0.0
    #: Per-query SLO budget (shed at dispatch when unmeetable).
    deadline_s: Optional[float] = None
    #: Admission cap on the dispatch queue.
    max_queue_length: Optional[int] = None
    #: Cap grants at the query's plan size.
    clamp_to_plan: bool = False
    server_id: Optional[str] = "live"

    def __post_init__(self) -> None:
        require_int_in_range(self.n_cores, "n_cores", low=1)
        require_positive(self.horizon_s, "horizon_s")
        require(
            0 <= self.warmup_s < self.horizon_s,
            "need 0 <= warmup_s < horizon_s",
        )
        if self.deadline_s is not None:
            require_positive(self.deadline_s, "deadline_s")
        if self.max_queue_length is not None:
            require_int_in_range(self.max_queue_length, "max_queue_length", low=1)


@dataclass(frozen=True)
class QueryOutcome:
    """What happened to one submitted query."""

    query_index: int
    status: str  # "completed" | "shed"
    arrival_s: float
    finished_s: float
    degree: int = 0
    shed_reason: Optional[str] = None
    results: Optional[RankedResults] = None

    @property
    def latency_s(self) -> float:
        return self.finished_s - self.arrival_s


class ServingNode:
    """One live index-serving node on an injected scheduler."""

    def __init__(
        self,
        scheduler: SchedulerProtocol,
        oracle: ServiceOracle,
        policy: ParallelismPolicy,
        config: ServingConfig,
        engine_search: Optional[EngineSearch] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.scheduler = scheduler
        self.oracle = oracle
        self.policy = policy
        self.config = config
        self.metrics = MetricsCollector(
            config.warmup_s, config.horizon_s, config.n_cores
        )
        self._engine_search = engine_search
        self.server = IndexServerModel(
            scheduler,
            oracle,
            policy,
            config.n_cores,
            self.metrics,
            on_query_complete=self._on_complete,
            clamp_to_plan=config.clamp_to_plan,
            deadline=config.deadline_s,
            max_queue_length=config.max_queue_length,
            on_query_shed=self._on_shed,
            tracer=tracer,
            server_id=config.server_id,
        )
        self.n_answered = 0

    # ----------------------------------------------------------------
    # Submission
    # ----------------------------------------------------------------

    def submit(
        self,
        query_index: int,
        on_done: Optional[OutcomeCallback] = None,
        query_class: Optional[str] = None,
    ) -> None:
        """Submit a query now; ``on_done`` fires exactly once with its
        outcome (synchronously if the query is shed at admission)."""
        self.server.submit(query_index, tag=on_done, query_class=query_class)

    def attach_controllers(
        self, controllers: Sequence[object], horizon_s: Optional[float] = None
    ) -> None:
        """Attach online control loops (same ``attach`` contract as the
        simulator runners: scheduler + server + collector + horizon)."""
        horizon = self.config.horizon_s if horizon_s is None else horizon_s
        for controller in controllers:
            controller.attach(self.scheduler, self.server, self.metrics,
                              horizon_s=horizon)

    # ----------------------------------------------------------------
    # Completion routing (server hooks)
    # ----------------------------------------------------------------

    def _on_complete(self, record: QueryRecord, tag: Any) -> None:
        self.n_answered += 1
        if tag is None:
            return
        results: Optional[RankedResults] = None
        if self._engine_search is not None:
            results = self._engine_search(record.query_index, record.degree)
        tag(
            QueryOutcome(
                query_index=record.query_index,
                status="completed",
                arrival_s=record.arrival,
                finished_s=record.completion,
                degree=record.degree,
                results=results,
            )
        )

    def _on_shed(self, query_index: int, tag: Any, reason: str, now: float) -> None:
        if tag is None:
            return
        tag(
            QueryOutcome(
                query_index=query_index,
                status="shed",
                arrival_s=now,
                finished_s=now,
                shed_reason=reason,
            )
        )

    # ----------------------------------------------------------------
    # Reporting
    # ----------------------------------------------------------------

    def summary(self, rate: float) -> LoadPointSummary:
        """Summarize the measurement window in the shared load-point
        schema. ``rate`` is the offered arrival rate (model QPS) the
        node was driven at — the node observes arrivals, not the
        generator's intent, so the caller supplies it."""
        config = LoadPointConfig(
            rate=rate,
            duration=self.config.horizon_s,
            warmup=self.config.warmup_s,
            n_cores=self.config.n_cores,
            clamp_to_plan=self.config.clamp_to_plan,
            deadline=self.config.deadline_s,
            max_queue_length=self.config.max_queue_length,
        )
        offered = rate * self.oracle.mean_sequential_latency() / config.n_cores
        return summarize_load_point(
            self.metrics, self.policy, config, offered,
            self.metrics.queue_delays(),
        )

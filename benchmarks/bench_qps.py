#!/usr/bin/env python
"""Queries-per-second headline benchmark: the hot-path overhaul in one number.

Measures real wall-clock throughput of the engine along the three axes
the batched hot path changed, and writes ``BENCH_qps.json`` (uploaded as
a CI artifact per commit):

* **single vs batched** — per-query sequential execution against
  :meth:`Engine.execute_batch` on the same query stream (identical
  results; see the bit-identity tests). The headline target is a
  ``--min-speedup`` ratio (2.0 at default scale) and the process exits 1
  below it, so a hot-path regression fails CI rather than silently
  eroding throughput.
* **mmap vs in-memory** — load time and batched qps over a format-v2
  shard opened with ``mmap_mode="r"`` versus fully materialized, plus
  the legacy v1 archive load time for reference. Query throughput should
  be backing-independent once pages are warm; load time should not be.
* **skipping on/off** — batched qps and chunk counters with the safe
  per-chunk score bound disabled versus enabled (score-bound-only
  termination, where skipping is result-preserving by construction).

Scale: the default workbench is a mid-size shard (30k docs) where
queries scan enough chunks for wave amortization to matter — set
``REPRO_SCALE=small`` (as CI does) for a fast smoke at reduced scale
with a correspondingly reduced speedup floor.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path
from typing import Callable, Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine import Engine, EngineConfig, TerminationConfig  # noqa: E402
from repro.index.io import load_index, save_index  # noqa: E402
from repro.workloads.workbench import WorkbenchConfig, build_workbench  # noqa: E402

#: (n_docs, vocab_size, n_queries, default min batched/single speedup)
SCALES = {
    "default": (30_000, 20_000, 400, 2.0),
    "small": (8_000, 8_000, 150, 1.2),
}


def _median_time(run: Callable[[], object], repeats: int) -> float:
    times: List[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        times.append(time.perf_counter() - started)
    return statistics.median(times)


def _qps(n_queries: int, seconds: float) -> float:
    return n_queries / seconds if seconds > 0 else float("inf")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_qps.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=os.environ.get("REPRO_SCALE", "default"),
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail below this batched/single qps ratio (default per scale)",
    )
    args = parser.parse_args()

    n_docs, vocab_size, n_queries, default_floor = SCALES[args.scale]
    min_speedup = args.min_speedup if args.min_speedup is not None else default_floor

    base = WorkbenchConfig.small(seed=0)
    config = replace(
        base, corpus=replace(base.corpus, n_docs=n_docs, vocab_size=vocab_size)
    )
    print(f"building workbench ({n_docs} docs, {vocab_size} vocab) ...")
    workbench = build_workbench(config)
    index = workbench.index
    queries = workbench.query_generator("bench-qps").sample_many(n_queries)

    results: Dict[str, object] = {
        "scale": args.scale,
        "workbench": {
            "n_docs": index.n_docs,
            "vocab_size": index.lexicon.vocab_size,
            "chunk_size": index.chunk_map.chunk_size,
            "n_chunks": index.n_chunks,
        },
        "n_queries": n_queries,
        "repeats": args.repeats,
    }

    # --- single vs batched -------------------------------------------------
    engine = Engine(index)
    batch = engine.batch_executor(initial_wave=16, max_wave=256)
    for query in queries[:20]:  # warm caches and code paths
        engine.execute(query)
    batch.execute(queries[:20])

    def run_single() -> None:
        for query in queries:
            engine.execute(query)

    single_s = _median_time(run_single, args.repeats)
    batched_s = _median_time(lambda: batch.execute(queries), args.repeats)
    single_qps = _qps(n_queries, single_s)
    batched_qps = _qps(n_queries, batched_s)
    speedup = batched_qps / single_qps
    results["single_qps"] = round(single_qps, 1)
    results["batched_qps"] = round(batched_qps, 1)
    results["batched_speedup"] = round(speedup, 3)
    print(f"single  {single_qps:9.0f} qps")
    print(f"batched {batched_qps:9.0f} qps   ({speedup:.2f}x)")

    # --- mmap vs in-memory -------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        v1_path = save_index(index, tmp_path / "shard_v1.npz", format_version=1)
        v2_path = save_index(index, tmp_path / "shard_v2")
        load_v1_s = _median_time(lambda: load_index(v1_path), args.repeats)
        load_mmap_s = _median_time(lambda: load_index(v2_path), args.repeats)
        load_ram_s = _median_time(
            lambda: load_index(v2_path, mmap=False), args.repeats
        )
        mmap_index = load_index(v2_path)
        mmap_batch = Engine(mmap_index).batch_executor(
            initial_wave=16, max_wave=256
        )
        mmap_batch.execute(queries[:20])
        mmap_s = _median_time(lambda: mmap_batch.execute(queries), args.repeats)
        mmap_qps = _qps(n_queries, mmap_s)
    results["load_ms"] = {
        "v1_npz": round(load_v1_s * 1e3, 2),
        "v2_mmap": round(load_mmap_s * 1e3, 2),
        "v2_in_memory": round(load_ram_s * 1e3, 2),
    }
    results["mmap_qps"] = round(mmap_qps, 1)
    results["mmap_vs_in_memory"] = round(mmap_qps / batched_qps, 3)
    print(
        f"load    v1 {load_v1_s * 1e3:7.1f}ms   v2-mmap {load_mmap_s * 1e3:6.1f}ms"
        f"   v2-ram {load_ram_s * 1e3:6.1f}ms"
    )
    print(f"mmap    {mmap_qps:9.0f} qps   ({mmap_qps / batched_qps:.2f}x of in-memory)")

    # --- skipping on/off ---------------------------------------------------
    skipping: Dict[str, object] = {}
    for label, term in (
        ("off", TerminationConfig(match_budget=None, use_score_bound=True)),
        (
            "on",
            TerminationConfig(
                match_budget=None, use_score_bound=True, skip_chunks=True
            ),
        ),
    ):
        skip_engine = Engine(index, EngineConfig(termination=term))
        skip_batch = skip_engine.batch_executor(initial_wave=16, max_wave=256)
        skip_batch.execute(queries[:20])
        seconds = _median_time(lambda: skip_batch.execute(queries), args.repeats)
        stats = skip_batch.last_stats
        skipping[label] = {
            "qps": round(_qps(n_queries, seconds), 1),
            "chunks_evaluated": stats.chunks_evaluated,
            "chunks_skipped": stats.chunks_skipped,
        }
    off_qps = skipping["off"]["qps"]  # type: ignore[index]
    on_qps = skipping["on"]["qps"]  # type: ignore[index]
    skipping["speedup"] = round(on_qps / off_qps, 3)  # type: ignore[operator]
    results["skipping"] = skipping
    print(f"skip    off {off_qps:8.0f} qps   on {on_qps:8.0f} qps")

    results["targets"] = {"min_batched_speedup": min_speedup}
    passed = speedup >= min_speedup
    results["pass"] = passed

    output = Path(args.output)
    output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {output}")
    if not passed:
        print(
            f"FAIL: batched speedup {speedup:.2f}x below floor {min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Self-benchmark for the reprolint incremental engine.

Measures three end-to-end wall-clock numbers over the real tree
(``src tests tools``), each including interpreter startup — the number
a developer actually waits for:

* **cold** — fresh cache directory: parse + analyze everything. The CI
  path after an analyzer or layer-map change; no target, reported for
  trend tracking.
* **warm full** — nothing changed since the priming run: content
  hashing plus cache reads only, no parsing, no analysis.
  Target: <= 1.5 s.
* **changed-only warm** — one scratch file added, ``--changed-only``:
  git diff, import-closure lookup from cached edges, and analysis of
  the one-file closure. The pre-commit path. Target: <= 0.5 s.

Timings are medians over ``--repeats`` runs. Results are written as a
JSON artifact (CI uploads it per commit) and the process exits 1 if a
target is missed, so a performance regression in the engine fails the
static-analysis job rather than silently eroding the fast path.

The scratch file is created untracked inside ``src/repro`` and removed
afterwards; it imports nothing and nothing imports it, so its dirty
closure is exactly one file.
"""

from __future__ import annotations

import argparse
import json
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
LINT_PATHS = ["src", "tests", "tools"]
TARGETS_S = {"warm_full_s": 1.5, "changed_only_s": 0.5}
_SCRATCH = REPO_ROOT / "src" / "repro" / "_bench_scratch.py"
_SCRATCH_BODY = '"""Scratch module staged by benchmarks/bench_reprolint.py."""\n'


def _run_once(extra: List[str]) -> float:
    started = time.perf_counter()
    proc = subprocess.run(
        [
            sys.executable, "-m", "tools.reprolint", *LINT_PATHS,
            "--baseline", ".reprolint-baseline.json", *extra,
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    elapsed = time.perf_counter() - started
    if proc.returncode not in (0, 1):
        raise SystemExit(
            f"reprolint exited {proc.returncode} during the benchmark:\n"
            f"{proc.stdout}{proc.stderr}"
        )
    return elapsed


def _median(extra: List[str], repeats: int) -> float:
    return statistics.median(_run_once(extra) for _ in range(repeats))


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default="reprolint-bench.json", metavar="FILE",
        help="write the JSON results to FILE (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, metavar="N",
        help="median over N runs per warm measurement (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    results: Dict[str, object] = {"paths": LINT_PATHS, "repeats": args.repeats}
    with tempfile.TemporaryDirectory(prefix="reprolint-bench-") as cache_dir:
        cache = ["--cache-dir", cache_dir]
        results["cold_s"] = round(_run_once(cache), 3)
        results["warm_full_s"] = round(_median(cache, args.repeats), 3)
        _SCRATCH.write_text(_SCRATCH_BODY)
        try:
            changed = cache + ["--changed-only"]
            _run_once(changed)  # prime the one-file closure entry
            results["changed_only_s"] = round(
                _median(changed, args.repeats), 3
            )
        finally:
            _SCRATCH.unlink()

    results["targets_s"] = TARGETS_S
    misses = {
        name: results[name]
        for name, limit in TARGETS_S.items()
        if float(results[name]) > limit  # type: ignore[arg-type]
    }
    results["ok"] = not misses
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n")

    print(
        f"reprolint bench: cold {results['cold_s']}s, "
        f"warm full {results['warm_full_s']}s "
        f"(target {TARGETS_S['warm_full_s']}s), "
        f"changed-only {results['changed_only_s']}s "
        f"(target {TARGETS_S['changed_only_s']}s)"
    )
    if misses:
        print(f"reprolint bench: TARGET MISSED: {misses}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""E19 — Overload & graceful degradation (robustness layer).

Regenerates this experiment's rows/series (see DESIGN.md §3 and
EXPERIMENTS.md) and enforces its shape checks.
"""

from conftest import run_experiment_benchmark


def test_e19_overload(benchmark, ctx, record_result):
    run_experiment_benchmark(benchmark, ctx, record_result, "e19")

"""Benchmark-suite plumbing.

Each ``bench_eXX_*.py`` regenerates one of the paper's tables/figures:
it runs the corresponding harness experiment once under
``pytest-benchmark`` (pedantic mode — these are end-to-end experiments,
not microbenchmarks), prints the reproduced rows/series, writes them to
``benchmarks/results/``, and fails if any of the experiment's shape
checks fail.

Scale: set ``REPRO_SCALE=small`` for a quick pass; the default
(reference) scale matches EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.harness.context import ExperimentContext
from repro.harness.registry import run_experiment
from repro.harness.result import ExperimentResult
from repro.util.serde import dump_json

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """One profiled system shared by every benchmark in the session."""
    return ExperimentContext()


@pytest.fixture(scope="session")
def record_result():
    """Persist an experiment's rendered tables and JSON payload."""

    def _record(result: ExperimentResult) -> None:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        text_path = RESULTS_DIR / f"{result.experiment_id}.txt"
        text_path.write_text(result.render(), encoding="utf-8")
        dump_json(result.to_json(), RESULTS_DIR / f"{result.experiment_id}.json")

    return _record


def run_experiment_benchmark(benchmark, ctx, record_result, experiment_id):
    """Shared driver used by every bench_eXX module."""
    result = benchmark.pedantic(
        run_experiment, args=(experiment_id, ctx), rounds=1, iterations=1
    )
    print()
    print(result.render())
    record_result(result)
    failed = [check for check in result.checks if not check.passed]
    assert not failed, "failed shape checks: " + ", ".join(c.name for c in failed)
    return result

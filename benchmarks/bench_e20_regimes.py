"""E20 — Regime shifts: offline vs online control (robustness layer).

Regenerates this experiment's rows/series (see DESIGN.md §3 and
EXPERIMENTS.md) and enforces its shape checks.
"""

from conftest import run_experiment_benchmark


def test_e20_regimes(benchmark, ctx, record_result):
    run_experiment_benchmark(benchmark, ctx, record_result, "e20")

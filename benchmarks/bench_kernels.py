"""Kernel microbenchmarks: the engine and simulator hot paths.

Unlike the ``bench_eXX`` experiment benchmarks (run-once, end-to-end),
these use pytest-benchmark conventionally to time the building blocks:
corpus generation, index build, chunk scoring, query execution at
several degrees, top-k maintenance, and simulator event throughput.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.generator import CorpusConfig, generate_corpus
from repro.engine.topk import TopK
from repro.index.builder import IndexConfig, build_index
from repro.sim.engine import Simulator
from repro.text.zipf import ZipfMandelbrot
from repro.workloads.workbench import WorkbenchConfig, cached_workbench


@pytest.fixture(scope="module")
def bench_workbench():
    return cached_workbench(WorkbenchConfig.small(seed=0))


@pytest.fixture(scope="module")
def long_query(bench_workbench):
    """A long (many-chunk) query for execution benchmarks."""
    generator = bench_workbench.query_generator("bench-queries")
    queries = generator.sample_many(40)
    engine = bench_workbench.engine
    return max(queries, key=lambda q: engine.execute(q, 1).chunks_evaluated)


def test_corpus_generation(benchmark):
    config = CorpusConfig(n_docs=2_000, vocab_size=4_000, seed=1)
    benchmark(generate_corpus, config)


def test_index_build(benchmark):
    corpus = generate_corpus(CorpusConfig(n_docs=2_000, vocab_size=4_000, seed=1))
    benchmark(build_index, corpus, IndexConfig(chunk_size=128))


def test_zipf_sampling(benchmark):
    zipf = ZipfMandelbrot(30_000, 1.05, 2.7)
    rng = np.random.default_rng(0)
    benchmark(zipf.sample, rng, 100_000)


def test_query_planning(benchmark, bench_workbench, long_query):
    benchmark(bench_workbench.engine.plan, long_query)


def test_chunk_scoring(benchmark, bench_workbench, long_query):
    plan = bench_workbench.engine.plan(long_query)
    benchmark(plan.score_chunk, 0)


def test_multi_chunk_scoring(benchmark, bench_workbench, long_query):
    """The batched kernel over every candidate chunk of a long query."""
    plan = bench_workbench.engine.plan(long_query)
    positions = list(range(plan.n_candidate_chunks))
    benchmark(plan.score_chunks, positions)


def test_batched_query_throughput(benchmark, bench_workbench):
    """Queries/sec headline: a query batch through the batched executor."""
    queries = bench_workbench.query_generator("bench-batch").sample_many(100)
    executor = bench_workbench.engine.batch_executor(
        initial_wave=16, max_wave=256
    )
    benchmark(executor.execute, queries)


@pytest.mark.parametrize("degree", [1, 4, 8])
def test_query_execution(benchmark, bench_workbench, long_query, degree):
    engine = bench_workbench.engine
    benchmark(engine.execute, long_query, degree)


def test_topk_offers(benchmark):
    rng = np.random.default_rng(2)
    scores = rng.random(10_000)
    doc_ids = np.arange(10_000, dtype=np.int64)

    def run():
        topk = TopK(10)
        topk.offer_many(scores, doc_ids)
        return topk

    benchmark(run)


def test_simulator_event_throughput(benchmark):
    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    benchmark(run)


def test_load_point_simulation(benchmark, bench_workbench):
    """End-to-end cost of one simulated load point (sequential policy)."""
    from repro.policies.fixed import SequentialPolicy
    from repro.profiles.measurement import MeasurementConfig, measure_cost_table
    from repro.sim.experiment import LoadPointConfig, run_load_point
    from repro.sim.oracle import ServiceOracle

    queries = bench_workbench.query_generator("bench-sim").sample_many(120)
    table = measure_cost_table(
        bench_workbench.engine, queries,
        MeasurementConfig(degrees=(1,), n_queries=120),
    )
    oracle = ServiceOracle(table)
    rate = 0.3 * 8 / oracle.mean_sequential_latency() / 8  # u=0.3 per core
    config = LoadPointConfig(rate=rate * 8, duration=2.0, warmup=0.5,
                             n_cores=8, seed=3)
    benchmark(run_load_point, oracle, SequentialPolicy(), config)


def test_threshold_derivation(benchmark, bench_workbench):
    from repro.policies.derivation import derive_threshold_table
    from repro.profiles.measurement import MeasurementConfig, measure_cost_table
    from repro.profiles.speedup import SpeedupProfile

    queries = bench_workbench.query_generator("bench-derive").sample_many(80)
    table = measure_cost_table(
        bench_workbench.engine, queries,
        MeasurementConfig(degrees=(1, 2, 4, 8), n_queries=80),
    )
    profile = SpeedupProfile(table)
    benchmark(derive_threshold_table, profile, 12)


def test_index_save_load(benchmark, bench_workbench, tmp_path_factory):
    from repro.index.io import load_index, save_index

    path = tmp_path_factory.mktemp("bench") / "shard.npz"
    save_index(bench_workbench.index, path, format_version=1)
    benchmark(load_index, path)


def test_index_load_mmap(benchmark, bench_workbench, tmp_path_factory):
    """O(1) open of a format-v2 shard (memory-mapped columns)."""
    from repro.index.io import load_index, save_index

    path = tmp_path_factory.mktemp("bench") / "shard_v2"
    save_index(bench_workbench.index, path)
    benchmark(load_index, path)

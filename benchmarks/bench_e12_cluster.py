"""E12 — Cluster fan-out: tail amplification and adaptive gains.

Regenerates this experiment's rows/series (see DESIGN.md §3 and
EXPERIMENTS.md) and enforces its shape checks.
"""

from conftest import run_experiment_benchmark


def test_e12_cluster(benchmark, ctx, record_result):
    run_experiment_benchmark(benchmark, ctx, record_result, "e12")

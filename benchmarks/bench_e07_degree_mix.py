"""E07 — Adaptive degree-selection mix vs load.

Regenerates this experiment's rows/series (see DESIGN.md §3 and
EXPERIMENTS.md) and enforces its shape checks.
"""

from conftest import run_experiment_benchmark


def test_e07_degree_mix(benchmark, ctx, record_result):
    run_experiment_benchmark(benchmark, ctx, record_result, "e07")

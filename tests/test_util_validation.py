"""Tests for repro.util.validation helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.util.validation import (
    require,
    require_in_range,
    require_int_in_range,
    require_nonempty,
    require_positive,
    require_type,
)


class TestRequire:
    def test_passes_on_true(self):
        require(True, "never raised")

    def test_raises_on_false(self):
        with pytest.raises(ConfigurationError, match="boom"):
            require(False, "boom")


class TestRequireType:
    def test_accepts_matching_type(self):
        assert require_type(3, int, "x") == 3

    def test_accepts_tuple_of_types(self):
        assert require_type("s", (int, str), "x") == "s"

    def test_rejects_wrong_type(self):
        with pytest.raises(ConfigurationError, match="x must be int"):
            require_type("s", int, "x")


class TestRequirePositive:
    def test_strict_accepts_positive(self):
        assert require_positive(0.5, "x") == 0.5

    def test_strict_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            require_positive(0, "x")

    def test_non_strict_accepts_zero(self):
        assert require_positive(0, "x", strict=False) == 0

    def test_rejects_non_number(self):
        with pytest.raises(ConfigurationError):
            require_positive("1", "x")


class TestRequireInRange:
    def test_inclusive_bounds(self):
        require_in_range(0.0, "x", low=0.0, high=1.0)
        require_in_range(1.0, "x", low=0.0, high=1.0)

    def test_exclusive_low(self):
        with pytest.raises(ConfigurationError):
            require_in_range(0.0, "x", low=0.0, low_inclusive=False)

    def test_exclusive_high(self):
        with pytest.raises(ConfigurationError):
            require_in_range(1.0, "x", high=1.0, high_inclusive=False)

    def test_below_low_rejected(self):
        with pytest.raises(ConfigurationError, match=">= 2"):
            require_in_range(1, "x", low=2)

    def test_above_high_rejected(self):
        with pytest.raises(ConfigurationError, match="<= 5"):
            require_in_range(6, "x", high=5)


class TestRequireIntInRange:
    def test_accepts_int(self):
        assert require_int_in_range(3, "x", low=1, high=5) == 3

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            require_int_in_range(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError):
            require_int_in_range(3.0, "x")


class TestRequireNonempty:
    def test_accepts_nonempty(self):
        assert require_nonempty([1], "x") == [1]

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError, match="empty"):
            require_nonempty([], "x")

    def test_rejects_unsized(self):
        with pytest.raises(ConfigurationError):
            require_nonempty(iter([1]), "x")

"""Tests for the ASCII chart renderers."""


import pytest

from repro.errors import ConfigurationError
from repro.util.ascii_chart import bar_chart, line_chart


class TestLineChart:
    def test_basic_shape(self):
        chart = line_chart(
            [0, 1, 2, 3],
            {"a": [1.0, 2.0, 3.0, 4.0]},
            width=30,
            height=8,
            title="T",
        )
        lines = chart.splitlines()
        assert lines[0] == "T"
        # title + height rows + x axis + legend
        assert len(lines) == 1 + 8 + 2
        assert "* a" in lines[-1]

    def test_extremes_plotted_at_corners(self):
        chart = line_chart([0, 10], {"s": [0.0, 100.0]}, width=20, height=5)
        rows = chart.splitlines()
        assert rows[0].rstrip().endswith("*")  # max at top-right
        assert "*" in rows[4]  # min on the bottom data row

    def test_log_scale_spans_decades(self):
        chart = line_chart(
            [1, 2, 3],
            {"s": [0.001, 1.0, 1000.0]},
            log_y=True,
            height=7,
        )
        assert "log y" in chart
        # Midpoint value 1.0 should land mid-grid under log scaling.
        rows = chart.splitlines()
        mid_rows = rows[2:6]
        assert any("*" in row for row in mid_rows)

    def test_multiple_series_get_distinct_glyphs(self):
        chart = line_chart(
            [0, 1],
            {"first": [1, 2], "second": [2, 1]},
        )
        assert "* first" in chart and "o second" in chart
        assert "o" in chart.splitlines()[1] or "o" in "".join(chart.splitlines())

    def test_nan_and_inf_skipped(self):
        chart = line_chart(
            [0, 1, 2],
            {"s": [1.0, float("nan"), float("inf")], "t": [1.0, 2.0, 3.0]},
        )
        assert chart  # renders without error

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            line_chart([0, 1], {})
        with pytest.raises(ConfigurationError):
            line_chart([0], {"s": [1.0]})
        with pytest.raises(ConfigurationError):
            line_chart([0, 1], {"s": [1.0]})  # length mismatch
        with pytest.raises(ConfigurationError):
            line_chart([0, 1], {"s": [-1.0, 0.0]}, log_y=True)

    def test_constant_series_renders(self):
        chart = line_chart([0, 1, 2], {"s": [5.0, 5.0, 5.0]})
        assert "*" in chart


class TestBarChart:
    def test_bars_scale_to_peak(self):
        chart = bar_chart(["a", "bb"], [10.0, 5.0], width=20)
        lines = chart.splitlines()
        a_hashes = lines[0].count("#")
        b_hashes = lines[1].count("#")
        assert a_hashes == 20
        assert abs(b_hashes - 10) <= 1

    def test_labels_aligned(self):
        chart = bar_chart(["x", "longer"], [1.0, 2.0])
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_zero_value_has_no_bar(self):
        chart = bar_chart(["z"], [0.0])
        assert "#" not in chart

    def test_unit_suffix(self):
        assert "qps" in bar_chart(["a"], [3.0], unit=" qps")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bar_chart([], [])
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [-1.0])

"""Unit tests for the pure scheduling-kernel decisions (repro.core.scheduling).

Each function is a deterministic map from explicit arguments to a value
— no clock reads, no I/O, no mutation (reprolint R014/R017 enforce the
contract; these tests pin the decision semantics the simulator driver
relies on).
"""

import pytest

from repro.core.scheduling import (
    PhasePlan,
    admission_decision,
    deadline_exceeded,
    grant_degree,
    observe_state,
    plan_escalation,
    plan_initial_phase,
)


class TestAdmissionDecision:
    def test_admits_by_default(self):
        assert admission_decision(None, None, 0, None) is None
        assert admission_decision("head", None, 3, 10) is None

    def test_class_shedding_wins_over_admission(self):
        # A degraded class is reported as "class" even when the queue is
        # also at the cap — the anomaly guard's accounting depends on it.
        assert admission_decision("tail", {"tail"}, 10, 10) == "class"

    def test_queue_cap(self):
        assert admission_decision("head", set(), 10, 10) == "admission"
        assert admission_decision("head", set(), 9, 10) is None

    def test_unclassified_query_never_class_shed(self):
        assert admission_decision(None, {"tail"}, 0, None) is None


class TestDeadlineExceeded:
    def test_disabled_without_deadline(self):
        assert not deadline_exceeded(100.0, 0.0, None, 5.0)

    def test_wait_alone_exceeds(self):
        assert deadline_exceeded(2.0, 0.0, 2.0, 0.0)

    def test_wait_plus_expected_exceeds(self):
        assert deadline_exceeded(1.5, 0.0, 2.0, 1.0)
        assert not deadline_exceeded(0.5, 0.0, 2.0, 1.0)

    def test_negative_prediction_degrades_to_wait_only(self):
        assert not deadline_exceeded(1.0, 0.0, 2.0, -5.0)
        assert deadline_exceeded(2.5, 0.0, 2.0, -5.0)


class TestObserveState:
    def test_snapshot_fields(self):
        state = observe_state(
            now=3.0, n_queued=2, n_running=1, free_cores=5, n_cores=8,
            n_shed=0, shed_this_cycle=False, max_queue_length=4,
        )
        assert state.now == pytest.approx(3.0)
        assert state.n_queued == 2
        assert not state.overloaded

    def test_overloaded_when_cycle_shed(self):
        state = observe_state(
            now=0.0, n_queued=0, n_running=0, free_cores=8, n_cores=8,
            n_shed=1, shed_this_cycle=True, max_queue_length=None,
        )
        assert state.overloaded

    def test_overloaded_at_queue_cap(self):
        state = observe_state(
            now=0.0, n_queued=4, n_running=0, free_cores=8, n_cores=8,
            n_shed=0, shed_this_cycle=False, max_queue_length=4,
        )
        assert state.overloaded


class TestGrantDegree:
    def test_clamped_to_free_cores(self):
        assert grant_degree(8, 3, lambda d: d) == 3

    def test_clamped_to_plan_limit(self):
        assert grant_degree(8, 8, lambda d: d, plan_limit=2) == 2

    def test_never_below_one(self):
        assert grant_degree(4, 0, lambda d: d) == 1

    def test_degree_grid_applies_last(self):
        # The oracle snaps to its measured grid after the caps.
        grid = lambda d: max(g for g in (1, 2, 4, 8) if g <= d)
        assert grant_degree(8, 7, grid) == 4


class TestPlanInitialPhase:
    def test_gang_runs_at_granted_degree(self):
        plan = plan_initial_phase(
            granted=4, probe=None, t1=8.0,
            parallel_latency=lambda d: 8.0 / d, slowdown=1.0,
        )
        assert plan == PhasePlan(degree=4, duration=2.0, kind="gang")

    def test_short_query_never_probes(self):
        plan = plan_initial_phase(
            granted=4, probe=5.0, t1=2.0,
            parallel_latency=lambda d: 2.0 / d, slowdown=1.0,
        )
        assert plan.kind == "gang"
        assert plan.degree == 1
        assert plan.duration == pytest.approx(2.0)

    def test_long_query_probes_with_escalation_plan(self):
        plan = plan_initial_phase(
            granted=4, probe=1.0, t1=8.0,
            parallel_latency=lambda d: 8.0 / d, slowdown=1.0,
        )
        assert plan.kind == "probe"
        assert plan.degree == 1
        assert plan.duration == pytest.approx(1.0)
        assert plan.escalation_degree == 4
        assert plan.probe_time == pytest.approx(1.0)

    def test_slowdown_scales_duration(self):
        plan = plan_initial_phase(
            granted=2, probe=None, t1=4.0,
            parallel_latency=lambda d: 4.0 / d, slowdown=1.5,
        )
        assert plan.duration == pytest.approx(3.0)


class TestPlanEscalation:
    def test_widens_to_free_cores(self):
        plan = plan_escalation(
            target=4, probe=2.0, t1=8.0, free_cores=4,
            clamp_degree=lambda d: d,
            parallel_latency=lambda d: 8.0 / d, slowdown=1.0,
        )
        assert plan.kind == "escalated"
        assert plan.degree == 4
        # 3/4 of the work remains; it parallelizes like the whole query.
        assert plan.duration == pytest.approx(1.5)

    def test_no_free_cores_continues_sequentially(self):
        plan = plan_escalation(
            target=4, probe=2.0, t1=8.0, free_cores=0,
            clamp_degree=lambda d: d,
            parallel_latency=lambda d: 8.0 / d, slowdown=1.0,
        )
        assert plan.degree == 1
        assert plan.duration == pytest.approx(6.0)

    def test_probe_overrun_never_negative(self):
        plan = plan_escalation(
            target=2, probe=9.0, t1=8.0, free_cores=2,
            clamp_degree=lambda d: d,
            parallel_latency=lambda d: 8.0 / d, slowdown=1.0,
        )
        assert plan.duration == pytest.approx(0.0)

"""Tests for the AdaptiveSearchSystem facade, capacity, and calibration."""

import pytest

from repro.core.calibration import calibrate_threshold_scale, scale_table
from repro.core.capacity import capacity_at_slo
from repro.core.controller import SystemConfig
from repro.errors import ConfigurationError
from repro.policies.adaptive import AdaptivePolicy, ThresholdTable
from repro.policies.fixed import FixedPolicy, SequentialPolicy
from repro.policies.incremental import IncrementalPolicy
from repro.policies.oracle import OraclePolicy
from repro.policies.predictive import PredictivePolicy


class TestSystemConstruction:
    def test_profile_and_thresholds_built(self, small_system):
        assert small_system.profile.degrees == (1, 2, 4, 8)
        assert small_system.threshold_table.max_degree >= 2

    def test_saturation_rate_consistent(self, small_system):
        expected = small_system.n_cores / small_system.oracle.mean_sequential_latency()
        assert small_system.saturation_rate == pytest.approx(expected)

    def test_rate_for_utilization(self, small_system):
        assert small_system.rate_for_utilization(0.5) == pytest.approx(
            0.5 * small_system.saturation_rate
        )
        with pytest.raises(Exception):
            small_system.rate_for_utilization(0.0)

    def test_predictor_annotations_attached(self, small_system):
        assert small_system.oracle.predicted is not None
        assert small_system.oracle.predicted.shape[0] == (
            small_system.cost_table.n_queries
        )

    def test_cutoffs_are_percentiles(self, small_system):
        dist = small_system.service_distribution
        assert small_system.long_query_cutoff == pytest.approx(
            dist.percentile(small_system.config.long_query_cutoff_percentile)
        )

    def test_bad_config_rejected(self):
        with pytest.raises(Exception):
            SystemConfig(n_queries=5)
        with pytest.raises(Exception):
            SystemConfig(degrees=(2, 4))


class TestPolicyFactory:
    def test_all_names_constructible(self, small_system):
        expected_types = {
            "sequential": SequentialPolicy,
            "fixed-4": FixedPolicy,
            "adaptive": AdaptivePolicy,
            "oracle": OraclePolicy,
            "predictive": PredictivePolicy,
            "incremental": IncrementalPolicy,
        }
        for name, cls in expected_types.items():
            assert isinstance(small_system.policy(name), cls)

    def test_unknown_name_rejected(self, small_system):
        with pytest.raises(ConfigurationError):
            small_system.policy("magic")
        with pytest.raises(ConfigurationError):
            small_system.policy("fixed-x")


class TestSweep:
    def test_sweep_aligned_and_labeled(self, small_system):
        comparison = small_system.sweep(
            ["sequential", "adaptive"], [0.1, 0.4], duration=2.0, warmup=0.5
        )
        assert set(comparison.summaries) == {"sequential", "adaptive"}
        assert len(comparison.rates) == 2
        for rows in comparison.summaries.values():
            assert len(rows) == 2

    def test_adaptive_beats_sequential_at_low_load(self, small_system):
        comparison = small_system.sweep(
            ["sequential", "adaptive"], [0.1], duration=3.0, warmup=0.5
        )
        assert (
            comparison.p99("adaptive")[0] < comparison.p99("sequential")[0]
        )

    def test_run_point_summary(self, small_system):
        summary = small_system.run_point(
            "sequential", small_system.rate_for_utilization(0.2),
            duration=2.0, warmup=0.5,
        )
        assert summary.policy == "sequential"
        assert summary.observed > 0


class TestCapacity:
    def test_capacity_ordering(self, small_system):
        slo = 3.0 * small_system.service_distribution.percentile(99)
        sequential = capacity_at_slo(
            small_system, "sequential", slo, duration=2.0, warmup=0.5,
            tolerance=0.05,
        )
        fixed8 = capacity_at_slo(
            small_system, "fixed-8", slo, duration=2.0, warmup=0.5,
            tolerance=0.05,
        )
        assert sequential.capacity_qps > fixed8.capacity_qps > 0

    def test_unattainable_slo_gives_zero(self, small_system):
        tiny_slo = small_system.service_distribution.percentile(1) / 100
        outcome = capacity_at_slo(
            small_system, "sequential", tiny_slo, duration=1.0, warmup=0.2,
            tolerance=0.05,
        )
        assert outcome.capacity_qps == 0.0


class TestCalibration:
    def test_scale_table_preserves_validity(self, small_system):
        for factor in (0.5, 1.0, 2.3):
            scaled = scale_table(small_system.threshold_table, factor)
            assert scaled.max_degree == small_system.threshold_table.max_degree

    def test_scale_table_shifts_limits(self):
        table = ThresholdTable.from_pairs([(2, 8), (4, 4), (8, 2)])
        doubled = scale_table(table, 2.0)
        assert doubled.entries == ((4, 8), (8, 4), (16, 2))

    def test_scale_handles_collisions(self):
        table = ThresholdTable.from_pairs([(1, 8), (2, 4), (3, 2)])
        shrunk = scale_table(table, 0.1)
        limits = [limit for limit, _ in shrunk.entries]
        assert limits == sorted(set(limits))

    def test_calibration_returns_best_factor(self, small_system):
        outcome = calibrate_threshold_scale(
            small_system,
            factors=(0.5, 1.0),
            utilizations=(0.1, 0.4),
            duration=1.5,
            warmup=0.3,
        )
        assert outcome.best_factor in (0.5, 1.0)
        assert set(outcome.mean_regret_by_factor) == {0.5, 1.0}

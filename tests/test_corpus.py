"""Tests for corpus generation and containers."""

import numpy as np
import pytest

from repro.corpus.documents import Corpus
from repro.corpus.generator import CorpusConfig, generate_corpus
from repro.corpus.stats import corpus_stats
from repro.errors import CorpusError


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(
        CorpusConfig(n_docs=600, vocab_size=900, mean_doc_length=90, seed=5)
    )


class TestGenerator:
    def test_shapes(self, corpus):
        assert corpus.n_docs == 600
        assert corpus.offsets.shape == (601,)
        assert corpus.terms.shape == corpus.freqs.shape

    def test_reproducible(self):
        config = CorpusConfig(n_docs=50, vocab_size=100, seed=3)
        a = generate_corpus(config)
        b = generate_corpus(config)
        assert np.array_equal(a.terms, b.terms)
        assert np.array_equal(a.freqs, b.freqs)
        assert np.array_equal(a.static_ranks, b.static_ranks)

    def test_doc_lengths_respect_bounds(self, corpus):
        config = CorpusConfig(n_docs=600, vocab_size=900, mean_doc_length=90, seed=5)
        assert corpus.doc_lengths.min() >= config.min_doc_length
        assert corpus.doc_lengths.max() <= config.max_doc_length

    def test_mean_length_near_target(self):
        c = generate_corpus(CorpusConfig(n_docs=4000, vocab_size=500,
                                         mean_doc_length=150, seed=1))
        assert abs(c.average_doc_length - 150) / 150 < 0.1

    def test_static_ranks_descending(self, corpus):
        assert np.all(np.diff(corpus.static_ranks) <= 1e-12)
        assert corpus.static_ranks.min() > 0

    def test_freqs_sum_to_doc_length(self, corpus):
        for doc_id in (0, 10, 599):
            doc = corpus.document(doc_id)
            assert doc.term_freqs.sum() == doc.length

    def test_terms_sorted_within_doc(self, corpus):
        for doc_id in (0, 42, 300):
            doc = corpus.document(doc_id)
            assert np.all(np.diff(doc.term_ids) > 0)

    def test_batching_does_not_change_output(self):
        config = CorpusConfig(n_docs=100, vocab_size=300, seed=9)
        small_batches = generate_corpus(config, batch_docs=7)
        one_batch = generate_corpus(config, batch_docs=1000)
        # Different batching consumes RNG differently, so only the
        # structure is comparable; both must be valid corpora.
        assert small_batches.n_docs == one_batch.n_docs
        for c in (small_batches, one_batch):
            assert int(c.offsets[-1]) == c.n_postings

    def test_popular_terms_have_long_posting_lists(self, corpus):
        df = corpus.document_frequencies()
        assert df[:20].mean() > df[-200:].mean()

    def test_bad_config_rejected(self):
        with pytest.raises(Exception):
            CorpusConfig(n_docs=0)
        with pytest.raises(Exception):
            CorpusConfig(mean_doc_length=-5)
        with pytest.raises(Exception):
            CorpusConfig(min_doc_length=100, max_doc_length=10)


class TestCorpusContainer:
    def test_document_view(self, corpus):
        doc = corpus.document(3)
        assert doc.doc_id == 3
        assert doc.n_unique_terms == doc.term_ids.shape[0]

    def test_term_frequency_lookup(self, corpus):
        doc = corpus.document(5)
        term = int(doc.term_ids[0])
        assert doc.term_frequency(term) == int(doc.term_freqs[0])
        absent = corpus.vocab_size - 1
        if absent not in set(doc.term_ids.tolist()):
            assert doc.term_frequency(absent) == 0

    def test_out_of_range_doc_rejected(self, corpus):
        with pytest.raises(CorpusError):
            corpus.document(corpus.n_docs)

    def test_iteration_matches_len(self, corpus):
        count = sum(1 for _ in corpus)
        assert count == len(corpus) == corpus.n_docs

    def test_invalid_construction_rejected(self):
        with pytest.raises(CorpusError):
            Corpus(
                doc_lengths=np.asarray([3, 4]),
                static_ranks=np.asarray([0.2, 0.9]),  # increasing: invalid
                offsets=np.asarray([0, 1, 2]),
                terms=np.asarray([0, 1]),
                freqs=np.asarray([3, 4]),
                vocab_size=5,
            )

    def test_offsets_mismatch_rejected(self):
        with pytest.raises(CorpusError):
            Corpus(
                doc_lengths=np.asarray([3]),
                static_ranks=np.asarray([0.5]),
                offsets=np.asarray([0, 2]),
                terms=np.asarray([0]),
                freqs=np.asarray([3]),
                vocab_size=5,
            )


class TestCorpusStats:
    def test_stats_consistency(self, corpus):
        stats = corpus_stats(corpus)
        assert stats.n_docs == corpus.n_docs
        assert stats.n_postings == corpus.n_postings
        assert 0 < stats.top10_posting_share < 1
        assert stats.mean_posting_list > 0

    def test_stats_table_renders(self, corpus):
        table = corpus_stats(corpus).to_table()
        assert "documents" in table.render()

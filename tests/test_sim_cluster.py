"""Tests for the cluster fan-out model and NHPP arrivals."""

import numpy as np
import pytest

from repro.engine.query import Query
from repro.errors import SimulationError
from repro.policies.fixed import SequentialPolicy
from repro.profiles.measurement import QueryCostTable
from repro.sim.arrivals import NHPPArrivals, diurnal_arrivals
from repro.sim.cluster import ClusterConfig, ClusterSummary, run_cluster_point
from repro.sim.oracle import ServiceOracle


def _table(n=2000, mean=0.002, seed=0):
    rng = np.random.default_rng(seed)
    latencies = rng.lognormal(np.log(mean), 0.8, size=n).reshape(n, 1)
    return QueryCostTable(
        [Query.of([0], query_id=i) for i in range(n)],
        (1,),
        latencies,
        latencies.copy(),
        np.ones((n, 1), dtype=np.int64),
    )


class TestClusterModel:
    def test_single_shard_reduces_to_plain_server(self):
        oracle = ServiceOracle(_table())
        config = ClusterConfig(n_shards=1, n_cores_per_shard=4, rate=200.0,
                               duration=5.0, warmup=1.0,
                               aggregation_overhead=0.0, seed=1)
        summary = run_cluster_point(oracle, SequentialPolicy, config)
        assert summary.observed > 0
        # With one shard, cluster latency == shard latency distribution.
        assert summary.tail_amplification == pytest.approx(1.0, abs=0.05)

    def test_fanout_amplifies_median(self):
        oracle = ServiceOracle(_table())
        base = dict(n_cores_per_shard=4, rate=100.0, duration=5.0,
                    warmup=1.0, aggregation_overhead=0.0, seed=2)
        one = run_cluster_point(oracle, SequentialPolicy,
                                ClusterConfig(n_shards=1, **base))
        eight = run_cluster_point(oracle, SequentialPolicy,
                                  ClusterConfig(n_shards=8, **base))
        assert eight.p50_latency > one.p50_latency

    def test_cluster_latency_at_least_slowest_shard_median(self):
        oracle = ServiceOracle(_table())
        config = ClusterConfig(n_shards=4, n_cores_per_shard=4, rate=50.0,
                               duration=5.0, warmup=1.0,
                               aggregation_overhead=0.0, seed=3)
        summary = run_cluster_point(oracle, SequentialPolicy, config)
        # max over 4 draws stochastically dominates a single draw.
        assert summary.p50_latency > 0

    def test_aggregation_overhead_added(self):
        oracle = ServiceOracle(_table())
        base = dict(n_shards=2, n_cores_per_shard=4, rate=50.0,
                    duration=5.0, warmup=1.0, seed=4)
        without = run_cluster_point(
            oracle, SequentialPolicy,
            ClusterConfig(aggregation_overhead=0.0, **base))
        with_overhead = run_cluster_point(
            oracle, SequentialPolicy,
            ClusterConfig(aggregation_overhead=0.005, **base))
        assert with_overhead.p50_latency == pytest.approx(
            without.p50_latency + 0.005, rel=0.05)

    def test_policy_factory_called_per_shard(self):
        oracle = ServiceOracle(_table())
        created = []

        def factory():
            policy = SequentialPolicy()
            created.append(policy)
            return policy

        run_cluster_point(
            oracle, factory,
            ClusterConfig(n_shards=3, n_cores_per_shard=2, rate=20.0,
                          duration=2.0, warmup=0.5, seed=5),
        )
        assert len(created) == 3
        assert len(set(map(id, created))) == 3

    def test_summary_fields(self):
        oracle = ServiceOracle(_table())
        summary = run_cluster_point(
            oracle, SequentialPolicy,
            ClusterConfig(n_shards=2, n_cores_per_shard=4, rate=100.0,
                          duration=4.0, warmup=1.0, seed=6),
        )
        assert isinstance(summary, ClusterSummary)
        assert summary.policy == "sequential"
        assert summary.p99_latency >= summary.p95_latency >= summary.p50_latency

    def test_invalid_config_rejected(self):
        with pytest.raises(Exception):
            ClusterConfig(n_shards=0)
        with pytest.raises(Exception):
            ClusterConfig(warmup=10.0, duration=5.0)


class TestNHPP:
    def test_constant_rate_matches_poisson_mean(self, rng):
        process = NHPPArrivals(lambda t: 500.0, 500.0, rng)
        gaps = [process.next_interarrival() for _ in range(20_000)]
        assert 1.0 / np.mean(gaps) == pytest.approx(500.0, rel=0.05)

    def test_rate_function_violation_detected(self, rng):
        process = NHPPArrivals(lambda t: 2000.0, 1000.0, rng)
        with pytest.raises(SimulationError):
            for _ in range(100):
                process.next_interarrival()

    def test_diurnal_mean_rate_over_period(self, rng):
        period_s = 10.0
        process = diurnal_arrivals(base_rate=1000.0, amplitude=0.8,
                                   period_s=period_s, rng=rng)
        times = np.cumsum([process.next_interarrival() for _ in range(50_000)])
        full_periods = int(times[-1] / period_s)
        inside = times[times < full_periods * period_s]
        measured = inside.size / (full_periods * period_s)
        assert measured == pytest.approx(1000.0, rel=0.05)

    def test_diurnal_peak_vs_trough_density(self):
        period_s = 10.0
        process = diurnal_arrivals(base_rate=2000.0, amplitude=0.9,
                                   period_s=period_s,
                                   rng=np.random.default_rng(8))
        times = np.cumsum([process.next_interarrival() for _ in range(80_000)])
        phase = (times % period_s) / period_s
        # sin peaks at phase 0.25, troughs at 0.75.
        peak = np.sum((phase > 0.15) & (phase < 0.35))
        trough = np.sum((phase > 0.65) & (phase < 0.85))
        assert peak > 3 * trough

    def test_diurnal_invalid_amplitude(self, rng):
        with pytest.raises(Exception):
            diurnal_arrivals(100.0, 1.0, 10.0, rng)

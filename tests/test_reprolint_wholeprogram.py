"""Whole-program reprolint tests: cross-module analyses on realistic bugs.

The single-file fixtures in ``test_reprolint.py`` pin exact finding
lines per rule; this module exercises the *cross-module* machinery —
the project model resolving imports between fixture modules — and then
mutation-tests the real tree: it copies actual ``src/repro`` files,
reintroduces a realistic reproducibility bug, and asserts the matching
rule catches it at the edited line. These are the regressions the
whole-program layer exists for:

* a seconds interval fed to a milliseconds deadline parameter across a
  module boundary (R009);
* the same RNG stream label derived twice from one factory (R010);
* a shared-state write outside the lock in the threaded executor
  (R012);
* an experiment module dropped from the harness registry (R013).
"""

from __future__ import annotations

import shutil
from pathlib import Path

from tools.reprolint import lint_paths
from tools.reprolint.core import FileContext
from tools.reprolint.project import ProjectModel

from test_reprolint import FIXTURES, REPO_ROOT, actual_findings, expected_findings


def _copy_tree_fixture(tmp_path: Path, name: str) -> Path:
    target = tmp_path / name
    shutil.copytree(FIXTURES / name, target)
    return target


def _mutated_copy(tmp_path: Path, rel_src: str, old: str, new: str) -> tuple[Path, int]:
    """Copy a real-tree file with ``old`` replaced by ``new``; return the
    copy's path and the 1-based line of the edit."""
    source = (REPO_ROOT / rel_src).read_text()
    assert old in source, f"mutation anchor missing from {rel_src}: {old!r}"
    mutated = source.replace(old, new, 1)
    target = tmp_path / Path(rel_src).relative_to("src/repro")
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(mutated)
    return target, 1 + mutated[: mutated.index(new)].count("\n")


class TestCrossModuleFixtures:
    def test_r009_seconds_into_ms_deadline(self, tmp_path):
        # driver.py passes an ``interval_s`` value to server.admit's
        # ``deadline_ms`` parameter — the units flow across the import.
        tree = _copy_tree_fixture(tmp_path, "r009_crossmodule")
        result = lint_paths([str(tree)], select=["R009"])
        assert actual_findings(result) == expected_findings(
            FIXTURES / "r009_crossmodule"
        )

    def test_r010_collision_across_modules(self, tmp_path):
        # setup.py derives stream("arrivals") and passes the SAME factory
        # to helper.sample_stream, which derives "arrivals" again. Both
        # sites must be reported.
        tree = _copy_tree_fixture(tmp_path, "r010_crossmodule")
        result = lint_paths([str(tree)], select=["R010"])
        assert actual_findings(result) == expected_findings(
            FIXTURES / "r010_crossmodule"
        )

    def test_project_model_resolves_fixture_imports(self, tmp_path):
        # The machinery under the rules: modules under a tmp prefix must
        # still resolve each other by dotted-suffix.
        tree = _copy_tree_fixture(tmp_path, "r009_crossmodule")
        ctxs = [
            FileContext.from_source(p.read_text(), str(p))
            for p in sorted(tree.rglob("*.py"))
        ]
        project = ProjectModel.build(ctxs)
        module = project.resolve_module("sim.server")
        assert module is not None
        assert "admit" in module.functions


class TestRealTreeMutations:
    """Reintroduce realistic bugs into copies of real files."""

    def test_r010_duplicate_arrivals_stream_in_cluster(self, tmp_path):
        # sim/cluster.py derives "arrivals" and "sample" from one
        # factory; renaming the second back to "arrivals" is the classic
        # stream-collision bug and must flag BOTH derivation sites.
        target, bad_line = _mutated_copy(
            tmp_path,
            "src/repro/sim/cluster.py",
            'sample_rng = streams.stream("sample")',
            'sample_rng = streams.stream("arrivals")',
        )
        result = lint_paths([str(target)], select=["R010"])
        assert sorted(f.line for f in result.findings) == [bad_line - 1, bad_line]
        assert {f.rule_id for f in result.findings} == {"R010"}

    def test_r009_percentile_scale_in_cluster(self, tmp_path):
        # np.percentile takes [0, 100]; 0.99 is the [0, 1] quantile
        # convention and silently returns ~p1 instead of p99.
        target, bad_line = _mutated_copy(
            tmp_path,
            "src/repro/sim/cluster.py",
            "float(np.percentile(cluster, 99))",
            "float(np.percentile(cluster, 0.99))",
        )
        result = lint_paths([str(target)], select=["R009"])
        assert [(f.line, f.rule_id) for f in result.findings] == [
            (bad_line, "R009")
        ]

    def test_r012_unlocked_merge_in_threaded_executor(self, tmp_path):
        # Removing the lock around _SharedState.merge leaves every
        # shared-counter write racing; merge is reached from the nested
        # ``worker`` closure submitted to the pool.
        target, bad_line = _mutated_copy(
            tmp_path,
            "src/repro/engine/threads.py",
            "        with self.lock:\n            self.chunks_evaluated += 1",
            "        if True:\n            self.chunks_evaluated += 1",
        )
        result = lint_paths([str(target)], select=["R012"])
        assert {f.rule_id for f in result.findings} == {"R012"}
        flagged = sorted(f.line for f in result.findings)
        # At minimum the three augmented counter writes in merge's body.
        assert len(flagged) >= 3
        assert all(bad_line < line <= bad_line + 6 for line in flagged)

    def test_r012_clean_on_real_threads_module(self, tmp_path):
        target = tmp_path / "engine" / "threads.py"
        target.parent.mkdir(parents=True)
        shutil.copy(REPO_ROOT / "src/repro/engine/threads.py", target)
        result = lint_paths([str(target)], select=["R012"])
        assert result.findings == []

    def test_r012_owned_batch_path_clean_cross_module(self, tmp_path):
        # The threaded batch worker hands whole queries to
        # BatchExecutor.execute_one; every per-query write it reaches is
        # on an object graph the thread constructed itself (ownership
        # transfer through constructors, receivers, and call arguments).
        # This needs the full tree: the worker -> execute_one edge only
        # resolves with batch.py in the project model.
        tree = tmp_path / "repro"
        shutil.copytree(REPO_ROOT / "src/repro", tree)
        result = lint_paths([str(tree)], select=["R012"])
        assert result.findings == []

    def test_r012_publishing_batch_stats_from_worker(self, tmp_path):
        # ...but ownership must stop at the executor, which IS shared
        # across worker threads: making execute_one publish its per-call
        # stats onto the executor reintroduces a real race and must flag.
        tree = tmp_path / "repro"
        shutil.copytree(REPO_ROOT / "src/repro", tree)
        target = tree / "engine" / "batch.py"
        source = target.read_text()
        anchor = (
            "        while not run.done:\n"
            "            self._advance(run, stats)\n"
            "        return run.result()"
        )
        assert anchor in source
        mutated = source.replace(
            anchor,
            "        while not run.done:\n"
            "            self._advance(run, stats)\n"
            "        self.last_stats = stats\n"
            "        return run.result()",
            1,
        )
        target.write_text(mutated)
        bad_line = 3 + mutated[: mutated.index(anchor[:30])].count("\n")
        result = lint_paths([str(tree)], select=["R012"])
        assert [(f.line, f.rule_id) for f in result.findings] == [
            (bad_line, "R012")
        ]

    def test_r013_dropping_experiment_from_registry(self, tmp_path):
        # Copy the full package (R013 needs registry + experiments
        # together), then delete e20_regimes from _MODULES: the module
        # still defines EXPERIMENT_ID but is no longer runnable by id.
        tree = tmp_path / "repro"
        shutil.copytree(REPO_ROOT / "src/repro", tree)
        registry = tree / "harness" / "registry.py"
        text = registry.read_text()
        # The import block ends identically, so anchor on the tuple's
        # unique tail: drop e20 from _MODULES but keep its import, making
        # registration the only difference.
        anchor = "    e20_regimes,\n)\n\nEXPERIMENTS"
        assert anchor in text
        registry.write_text(text.replace(anchor, ")\n\nEXPERIMENTS", 1))
        result = lint_paths([str(tree)], select=["R013"])
        assert [f.rule_id for f in result.findings] == ["R013"]
        finding = result.findings[0]
        assert Path(finding.path).name == "e20_regimes.py"
        assert "e20" in finding.message

    def test_r013_clean_on_real_tree(self, tmp_path):
        tree = tmp_path / "repro"
        shutil.copytree(REPO_ROOT / "src/repro", tree)
        result = lint_paths([str(tree)], select=["R013"])
        assert result.findings == []

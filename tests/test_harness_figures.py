"""Tests for the CSV figure-data exporter."""

import csv

import pytest

from repro.errors import ConfigurationError
from repro.harness.figures import export_csv
from repro.harness.result import ExperimentResult
from repro.util.serde import dump_json


def _write_payload(tmp_path, experiment_id, data):
    result = ExperimentResult(experiment_id, "t", "d")
    result.data = data
    dump_json(result.to_json(), tmp_path / f"{experiment_id}.json")


class TestExportCsv:
    def test_series_export(self, tmp_path):
        _write_payload(
            tmp_path / "in", "e06",
            {
                "utilizations": [0.1, 0.5, 0.9],
                "p99_ms": {"adaptive": [1.0, 2.0, 3.0],
                           "sequential": [4.0, 5.0, 6.0]},
                "envelope_ms": [0.9, 1.9, 2.9],
            },
        )
        written = export_csv(tmp_path / "in", tmp_path / "out")
        series = [p for p in written if p.name == "e06_series.csv"]
        assert series
        with series[0].open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["utilizations", "envelope_ms", "p99_ms/adaptive",
                           "p99_ms/sequential"]
        assert rows[1] == ["0.1", "0.9", "1.0", "4.0"]

    def test_scalar_export(self, tmp_path):
        _write_payload(
            tmp_path / "in", "e08",
            {"slo_ms": 39.5, "capacity_qps": {"adaptive": 6946.0}},
        )
        written = export_csv(tmp_path / "in", tmp_path / "out")
        scalars = [p for p in written if p.name == "e08_scalars.csv"]
        assert scalars
        content = scalars[0].read_text()
        assert "slo_ms,39.5" in content
        assert "capacity_qps/adaptive,6946.0" in content

    def test_mismatched_lengths_skipped(self, tmp_path):
        _write_payload(
            tmp_path / "in", "e05",
            {"utilizations": [0.1, 0.2], "short": [1.0], "ok": [1.0, 2.0]},
        )
        written = export_csv(tmp_path / "in", tmp_path / "out")
        with [p for p in written if "series" in p.name][0].open() as handle:
            header = next(csv.reader(handle))
        assert "short" not in header and "ok" in header

    def test_nothing_exportable_rejected(self, tmp_path):
        _write_payload(tmp_path / "in", "e01", {})
        with pytest.raises(ConfigurationError):
            export_csv(tmp_path / "in", tmp_path / "out")

    def test_real_reference_results_export(self, tmp_path):
        """Smoke: the actual shipped reference results export cleanly."""
        import pathlib
        reference = pathlib.Path("results/reference")
        if not reference.is_dir():
            pytest.skip("reference results not present")
        written = export_csv(reference, tmp_path / "out")
        assert any("e06_series" in p.name for p in written)

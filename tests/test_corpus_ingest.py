"""Tests for ingesting real text documents."""

import numpy as np
import pytest

from repro.corpus.ingest import ingest_documents, parse_query
from repro.engine.executor import Engine
from repro.engine.query import MatchMode
from repro.errors import CorpusError, QueryError
from repro.index.builder import IndexConfig, build_index

DOCS = [
    ("Adaptive parallelism for web search reduces tail latency", 0.95),
    ("Web search engines scan inverted indexes on many cores", 0.80),
    ("Parallel query execution wastes work under early termination", 0.60),
    ("Latency critical services run at low utilization", 0.40),
    ("Tail latency dominates the service level objective", 0.75),
]


@pytest.fixture(scope="module")
def ingested():
    return ingest_documents(DOCS)


class TestIngest:
    def test_doc_count_and_order(self, ingested):
        corpus, _ = ingested
        assert corpus.n_docs == len(DOCS)
        # Doc 0 must be the highest-ranked input (rank 0.95).
        assert np.all(np.diff(corpus.static_ranks) <= 1e-12)

    def test_static_ranks_normalized(self, ingested):
        corpus, _ = ingested
        assert corpus.static_ranks.max() <= 1.0
        assert corpus.static_ranks.min() > 0.0

    def test_vocabulary_roundtrip(self, ingested):
        _, vocabulary = ingested
        term_id = vocabulary.id_for("latency")
        assert term_id is not None
        assert vocabulary.word(term_id) == "latency"
        assert "latency" in vocabulary

    def test_stopwords_removed(self, ingested):
        _, vocabulary = ingested
        assert "the" not in vocabulary
        assert "for" not in vocabulary

    def test_doc_lengths_count_tokens(self, ingested):
        corpus, _ = ingested
        assert corpus.doc_lengths.min() >= 4

    def test_empty_document_rejected(self):
        with pytest.raises(CorpusError):
            ingest_documents([("the and of", 1.0)])  # all stopwords

    def test_no_documents_rejected(self):
        with pytest.raises(CorpusError):
            ingest_documents([])

    def test_bad_pair_rejected(self):
        with pytest.raises(CorpusError):
            ingest_documents(["just a string"])

    def test_equal_ranks_allowed(self):
        corpus, _ = ingest_documents([("alpha beta", 1.0), ("gamma delta", 1.0)])
        assert corpus.n_docs == 2
        assert np.all(corpus.static_ranks > 0)


class TestEndToEndSearch:
    def test_search_own_documents(self, ingested):
        corpus, vocabulary = ingested
        index = build_index(corpus, IndexConfig(chunk_size=4))
        engine = Engine(index)
        query = parse_query("tail latency", vocabulary)
        result = engine.execute(query, degree=1)
        assert result.n_results >= 1
        # Both matching docs contain "tail" and "latency"; top hits must.
        top_doc = corpus.document(result.results[0].doc_id)
        tail_id = vocabulary.id_for("tail")
        latency_id = vocabulary.id_for("latency")
        assert top_doc.term_frequency(tail_id) > 0
        assert top_doc.term_frequency(latency_id) > 0

    def test_parallel_search_same_results(self, ingested):
        corpus, vocabulary = ingested
        index = build_index(corpus, IndexConfig(chunk_size=2))
        engine = Engine(index)
        query = parse_query("web search", vocabulary)
        assert engine.execute(query, 1).doc_ids == engine.execute(query, 3).doc_ids

    def test_disjunctive_parse(self, ingested):
        _, vocabulary = ingested
        query = parse_query("web OR nonsense latency", vocabulary,
                            mode=MatchMode.ANY)
        assert query.mode is MatchMode.ANY

    def test_unknown_words_dropped(self, ingested):
        _, vocabulary = ingested
        query = parse_query("latency zzzzz", vocabulary)
        assert query.n_terms == 1

    def test_all_unknown_rejected(self, ingested):
        _, vocabulary = ingested
        with pytest.raises(QueryError):
            parse_query("zzzzz qqqqq", vocabulary)

"""Sim-vs-live parity: identical decision sequences, tolerance bands.

The headline of the live-serving tier: replaying one scripted workload
through the virtual-time simulator and through the live serving node on
a FakeClock must produce the *bit-identical* ordered sequence of kernel
decisions (admit / shed / degree_grant / escalate) — the two hostings
share the scheduling kernel, the policies, and the server model, and
differ only in who advances the clock.
"""

import json

import numpy as np
import pytest

from repro.engine.query import Query
from repro.obs.spans import (
    EVENT_ADMIT,
    EVENT_DEGREE_GRANT,
    EVENT_ESCALATE,
    EVENT_SHED,
    RecordingTracer,
)
from repro.policies.adaptive import AdaptivePolicy, ThresholdTable
from repro.policies.fixed import FixedPolicy, SequentialPolicy
from repro.policies.incremental import IncrementalPolicy
from repro.policies.online import (
    OnlineAdaptivePolicy,
    OnlineControllerConfig,
    OnlineDegreeController,
)
from repro.profiles.measurement import QueryCostTable
from repro.runtime.parity import (
    DEFAULT_TOLERANCES,
    compare_decision_sequences,
    decision_events,
    run_scripted_live,
    tolerance_report,
)
from repro.sim.anomaly import AnomalyGuard, AnomalyGuardConfig
from repro.sim.experiment import LoadPointConfig
from repro.sim.oracle import ServiceOracle
from repro.sim.script import build_arrival_script, run_scripted_point
from repro.util.serde import to_jsonable


def _constant_table(n_queries=10, t1=1.0, degrees=(1, 2, 4), speedup=None):
    speedup = speedup or {1: 1.0, 2: 1.8, 4: 3.0}
    latency = np.stack(
        [np.full(n_queries, t1 / speedup[p]) for p in degrees], axis=1
    )
    cpu = latency * np.asarray(degrees)[None, :]
    chunks = np.ones((n_queries, len(degrees)), dtype=np.int64)
    queries = [Query.of([0], query_id=i) for i in range(n_queries)]
    return QueryCostTable(queries, degrees, latency, cpu, chunks)


def _summary_json(summary):
    return json.dumps(to_jsonable(summary), sort_keys=True)


_TABLE = ThresholdTable.from_pairs([(2, 4), (5, 2), (12, 1)])


def _run_both(policy_factory, config, controllers_factory=None, oracle=None):
    """One script through both hostings; returns (events, comparison,
    sim_summary, live_summary)."""
    oracle = oracle if oracle is not None else ServiceOracle(_constant_table())
    script = build_arrival_script(oracle.n_queries, config)
    assert script, "degenerate case: script must contain arrivals"

    sim_tracer = RecordingTracer()
    sim_controllers = controllers_factory() if controllers_factory else ()
    sim_summary, _ = run_scripted_point(
        oracle, policy_factory(), config, script,
        controllers=sim_controllers, tracer=sim_tracer,
    )

    live_tracer = RecordingTracer()
    live_controllers = controllers_factory() if controllers_factory else ()
    live_summary, _ = run_scripted_live(
        oracle, policy_factory(), config, script,
        controllers=live_controllers, tracer=live_tracer,
    )

    left = decision_events(sim_tracer.traces)
    right = decision_events(live_tracer.traces)
    comparison = compare_decision_sequences(left, right)
    return left, comparison, sim_summary, live_summary


class TestDecisionParity:
    @pytest.mark.parametrize("policy_factory", [
        SequentialPolicy,
        lambda: FixedPolicy(2),
        lambda: AdaptivePolicy(_TABLE),
    ], ids=["sequential", "fixed-2", "adaptive"])
    def test_identical_decisions_under_load(self, policy_factory):
        config = LoadPointConfig(rate=6.0, duration=8.0, warmup=1.0,
                                 n_cores=4, seed=11)
        events, comparison, sim_summary, live_summary = _run_both(
            policy_factory, config
        )
        assert comparison["identical"], comparison["first_divergence"]
        assert comparison["n_left"] == comparison["n_right"] > 0
        assert any(e[2] == EVENT_ADMIT for e in events)
        assert any(e[2] == EVENT_DEGREE_GRANT for e in events)
        assert _summary_json(sim_summary) == _summary_json(live_summary)

    def test_identical_shedding_under_overload(self):
        """Deadline sheds and admission-cap rejects must happen to the
        same queries at the same times in both hostings."""
        config = LoadPointConfig(
            rate=12.0, duration=8.0, warmup=1.0, n_cores=4, seed=5,
            deadline=1.5, max_queue_length=6,
        )
        events, comparison, sim_summary, live_summary = _run_both(
            lambda: FixedPolicy(2), config
        )
        assert comparison["identical"], comparison["first_divergence"]
        sheds = [e for e in events if e[2] == EVENT_SHED]
        assert sheds, "overload case must actually shed"
        assert sim_summary.n_shed == live_summary.n_shed > 0
        assert _summary_json(sim_summary) == _summary_json(live_summary)

    def test_identical_escalations_incremental_policy(self):
        config = LoadPointConfig(rate=3.0, duration=10.0, warmup=1.0,
                                 n_cores=4, seed=9)
        events, comparison, _, _ = _run_both(
            lambda: IncrementalPolicy(_TABLE, probe_time=0.3), config
        )
        assert comparison["identical"], comparison["first_divergence"]
        assert any(e[2] == EVENT_ESCALATE for e in events), (
            "1s queries must outlive a 0.3s probe and escalate"
        )

    def test_identical_with_online_controller_and_guard(self):
        """Online control loops mutate policy knobs mid-run; both
        hostings must see the same windowed signals and apply the same
        adjustments for decisions to stay identical."""
        def controllers():
            policy_holder.append(OnlineAdaptivePolicy(_TABLE))
            controller = OnlineDegreeController(
                policy_holder[-1],
                OnlineControllerConfig(target_p99_s=2.0, window_s=1.0),
            )
            guard = AnomalyGuard(
                AnomalyGuardConfig(slo_s=2.0, window_s=1.0),
                policy=policy_holder[-1],
            )
            return (controller, guard)

        policy_holder = []
        config = LoadPointConfig(
            rate=10.0, duration=8.0, warmup=1.0, n_cores=4, seed=13,
            deadline=2.5, max_queue_length=16,
        )
        oracle = ServiceOracle(_constant_table())
        script = build_arrival_script(oracle.n_queries, config)

        sim_tracer = RecordingTracer()
        sim_controllers = controllers()
        sim_summary, _ = run_scripted_point(
            oracle, policy_holder[-1], config, script,
            controllers=sim_controllers, tracer=sim_tracer,
        )
        live_tracer = RecordingTracer()
        live_controllers = controllers()
        live_summary, _ = run_scripted_live(
            oracle, policy_holder[-1], config, script,
            controllers=live_controllers, tracer=live_tracer,
        )
        comparison = compare_decision_sequences(
            decision_events(sim_tracer.traces),
            decision_events(live_tracer.traces),
        )
        assert comparison["identical"], comparison["first_divergence"]
        assert _summary_json(sim_summary) == _summary_json(live_summary)

    def test_live_replay_deterministic_across_runs(self):
        config = LoadPointConfig(
            rate=10.0, duration=6.0, warmup=1.0, n_cores=4, seed=21,
            deadline=2.0, max_queue_length=8,
        )
        oracle = ServiceOracle(_constant_table())
        script = build_arrival_script(oracle.n_queries, config)
        sequences = []
        for _ in range(3):
            tracer = RecordingTracer()
            run_scripted_live(
                oracle, FixedPolicy(2), config, script, tracer=tracer
            )
            sequences.append(decision_events(tracer.traces))
        assert sequences[0] == sequences[1] == sequences[2]
        assert len(sequences[0]) > 0


class TestCompareDecisionSequences:
    def test_identical(self):
        seq = [(0, 1, EVENT_ADMIT, 0.5, ())]
        result = compare_decision_sequences(seq, list(seq))
        assert result["identical"]
        assert result["first_divergence"] is None

    def test_value_divergence_reported(self):
        left = [(0, 1, EVENT_ADMIT, 0.5, ()), (1, 2, EVENT_SHED, 0.7, ())]
        right = [(0, 1, EVENT_ADMIT, 0.5, ()), (1, 2, EVENT_SHED, 0.8, ())]
        result = compare_decision_sequences(left, right)
        assert not result["identical"]
        assert result["first_divergence"]["index"] == 1
        assert result["first_divergence"]["left"][3] == 0.7

    def test_length_divergence_reported(self):
        left = [(0, 1, EVENT_ADMIT, 0.5, ())]
        result = compare_decision_sequences(left, left + left)
        assert not result["identical"]
        assert result["first_divergence"]["index"] == 1
        assert result["first_divergence"]["left"] is None


class TestToleranceReport:
    def _summary(self, **overrides):
        from repro.sim.experiment import LoadPointSummary

        values = dict(
            policy="fixed-2", rate=10.0, n_cores=4, offered_utilization=0.5,
            observed=100, throughput=10.0, utilization=0.5,
            mean_latency=0.1, p50_latency=0.09, p95_latency=0.2,
            p99_latency=0.3, mean_queue_delay=0.01, mean_degree=2.0,
        )
        values.update(overrides)
        return LoadPointSummary(**values)

    def test_within_bands(self):
        report = tolerance_report(
            self._summary(), self._summary(mean_latency=0.11)
        )
        assert report["ok"]
        assert report["metrics"]["mean_latency"]["ok"]
        assert report["metrics"]["mean_latency"]["kind"] == "relative"

    def test_out_of_band_latency_fails(self):
        report = tolerance_report(
            self._summary(), self._summary(mean_latency=0.2)
        )
        assert not report["ok"]
        entry = report["metrics"]["mean_latency"]
        assert not entry["ok"]
        assert entry["deviation"] == pytest.approx(1.0)

    def test_shed_rate_is_absolute(self):
        # 0.0 -> 0.05 is within the 0.10 absolute band even though the
        # relative deviation would be infinite.
        report = tolerance_report(
            self._summary(shed_rate=0.0), self._summary(shed_rate=0.05)
        )
        assert report["metrics"]["shed_rate"]["kind"] == "absolute"
        assert report["metrics"]["shed_rate"]["ok"]
        report = tolerance_report(
            self._summary(shed_rate=0.0), self._summary(shed_rate=0.2)
        )
        assert not report["metrics"]["shed_rate"]["ok"]

    def test_nan_on_both_sides_skipped(self):
        # goodput/slo_attainment default to NaN without an SLO; the
        # report must treat matching NaN as in-band, not a failure.
        report = tolerance_report(self._summary(), self._summary())
        entry = report["metrics"]["slo_attainment"]
        assert entry["kind"] == "skipped-nan"
        assert entry["ok"] and report["ok"]

    def test_custom_bands(self):
        report = tolerance_report(
            self._summary(), self._summary(throughput=10.4),
            tolerances={"throughput": 0.01},
        )
        assert not report["ok"]
        assert set(report["metrics"]) == {"throughput"}

    def test_default_bands_cover_headline_metrics(self):
        assert {"p50_latency", "p99_latency", "shed_rate",
                "throughput"} <= set(DEFAULT_TOLERANCES)

"""Incremental-engine tests: result cache, dirty closure, stable bytes.

The cache contract is that ``--cache-dir``, ``--jobs``, and
``--changed-only`` are *pure accelerations*: the findings and the
rendered report bytes must be identical to a cold serial run. These
tests prove both directions — identical output, and that warm runs
really skip analysis (a monkeypatched rule that raises is never
invoked on a cache hit).
"""

from __future__ import annotations

import json
import shutil
import subprocess
from pathlib import Path

import pytest

from tools.reprolint import all_rules, lint_paths
from tools.reprolint.cache import (
    AnalysisCache,
    FileResult,
    layer_maps_fingerprint,
    ruleset_version,
)
from tools.reprolint.cli import main as reprolint_main
from tools.reprolint.core import Finding

from test_reprolint import FIXTURES

_WALL_CLOCK = "import time\n\n\ndef f() -> float:\n    return time.time()\n"
_CLEAN = '"""Nothing here."""\n\nX = 1\n'


def _stage(tmp_path: Path) -> Path:
    tree = tmp_path / "sim"
    tree.mkdir()
    (tree / "legacy.py").write_text(_WALL_CLOCK)
    (tree / "tidy.py").write_text(_CLEAN)
    return tree


class TestIncrementalCache:
    def test_warm_run_identical_and_skips_analysis(
        self, tmp_path, monkeypatch
    ):
        tree = _stage(tmp_path)
        cache_dir = str(tmp_path / "cache")
        cold = lint_paths([str(tree)], select=["R003"], cache_dir=cache_dir)
        assert len(cold.findings) == 1

        def boom(self, ctx):
            raise AssertionError("per-file rule re-ran on a warm cache")

        monkeypatch.setattr(all_rules()["R003"], "check", boom)
        warm = lint_paths([str(tree)], select=["R003"], cache_dir=cache_dir)
        assert warm.findings == cold.findings
        assert warm.suppressed == cold.suppressed
        assert warm.files_scanned == cold.files_scanned

    def test_warm_run_skips_project_pass(self, tmp_path, monkeypatch):
        tree = tmp_path / "r018_taint"
        shutil.copytree(FIXTURES / "r018_taint", tree)
        cache_dir = str(tmp_path / "cache")
        cold = lint_paths([str(tree)], select=["R018"], cache_dir=cache_dir)
        assert cold.findings

        def boom(self, ctxs, project):
            raise AssertionError("project rule re-ran on a warm cache")

        monkeypatch.setattr(all_rules()["R018"], "check_project", boom)
        warm = lint_paths([str(tree)], select=["R018"], cache_dir=cache_dir)
        assert warm.findings == cold.findings

    def test_edit_reanalyzes_only_the_changed_file(
        self, tmp_path, monkeypatch
    ):
        tree = _stage(tmp_path)
        cache_dir = str(tmp_path / "cache")
        lint_paths([str(tree)], select=["R003"], cache_dir=cache_dir)

        (tree / "tidy.py").write_text(_CLEAN + "\nY = 2\n")
        analyzed = []
        original = all_rules()["R003"].check

        def spy(self, ctx):
            analyzed.append(ctx.path)
            return original(self, ctx)

        monkeypatch.setattr(all_rules()["R003"], "check", spy)
        result = lint_paths([str(tree)], select=["R003"], cache_dir=cache_dir)
        assert len(result.findings) == 1  # legacy.py, straight from cache
        assert [Path(p).name for p in analyzed] == ["tidy.py"]

    def test_edit_updates_findings(self, tmp_path):
        tree = _stage(tmp_path)
        cache_dir = str(tmp_path / "cache")
        cold = lint_paths([str(tree)], select=["R003"], cache_dir=cache_dir)
        assert len(cold.findings) == 1
        (tree / "tidy.py").write_text(
            "import time\n\n\ndef g() -> float:\n    return time.monotonic()\n"
        )
        edited = lint_paths([str(tree)], select=["R003"], cache_dir=cache_dir)
        assert len(edited.findings) == 2
        assert {Path(f.path).name for f in edited.findings} == {
            "legacy.py",
            "tidy.py",
        }

    def test_analyzer_version_invalidates(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = AnalysisCache(str(cache_dir), "ruleset-a", "maps-a")
        first.store_file_result(
            "x.py", "h1", "R003",
            FileResult(
                findings=[Finding("x.py", 1, 1, "R003", "stale")],
                suppressed=[], errors=[],
            ),
        )
        first.store_imports("x.py", "h1", [])
        # save() prunes vanished paths, so the key must exist on disk.
        (tmp_path / "x.py").write_text("pass\n")
        import os

        cwd = os.getcwd()
        os.chdir(tmp_path)
        try:
            first.save()
            same = AnalysisCache(str(cache_dir), "ruleset-a", "maps-a")
            assert same.file_result("x.py", "h1", "R003") is not None
            bumped = AnalysisCache(str(cache_dir), "ruleset-b", "maps-a")
            assert bumped.file_result("x.py", "h1", "R003") is None
            remapped = AnalysisCache(str(cache_dir), "ruleset-a", "maps-b")
            assert remapped.file_result("x.py", "h1", "R003") is None
        finally:
            os.chdir(cwd)

    def test_layer_map_edit_changes_fingerprint(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "layers.toml").write_text('[layers]\nsim = ["mod"]\n')
        module = tree / "mod.py"
        module.write_text("X = 1\n")
        before = layer_maps_fingerprint([module])
        (tree / "layers.toml").write_text('[layers]\nsim = ["other"]\n')
        after = layer_maps_fingerprint([module])
        assert before != after

    def test_ruleset_version_is_stable_hex(self):
        version = ruleset_version()
        assert version == ruleset_version()
        int(version, 16)

    def test_corrupt_cache_is_ignored(self, tmp_path):
        tree = _stage(tmp_path)
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "cache.json").write_text("{definitely not json")
        result = lint_paths(
            [str(tree)], select=["R003"], cache_dir=str(cache_dir)
        )
        assert len(result.findings) == 1
        # ...and the broken file was atomically replaced with a valid one.
        payload = json.loads((cache_dir / "cache.json").read_text())
        assert payload["ruleset"] == ruleset_version()


def _git(cwd: Path, *args: str) -> None:
    subprocess.run(
        ["git", *args], cwd=cwd, check=True, capture_output=True, text=True,
        env={
            "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(cwd), "PATH": __import__("os").environ["PATH"],
        },
    )


def _scratch_repo(tmp_path: Path) -> Path:
    repo = tmp_path / "repo"
    tree = repo / "sim"
    tree.mkdir(parents=True)
    (tree / "base.py").write_text("def scale(x):\n    return 2 * x\n")
    (tree / "caller.py").write_text(
        "from sim.base import scale\n\n\ndef run():\n    return scale(1)\n"
    )
    (tree / "bystander.py").write_text('"""Imports nothing."""\nZ = 3\n')
    _git(repo, "init", "-q")
    _git(repo, "add", "-A")
    _git(repo, "commit", "-qm", "seed")
    return repo


class TestChangedOnly:
    def test_reverse_importers_join_the_dirty_closure(
        self, tmp_path, monkeypatch
    ):
        repo = _scratch_repo(tmp_path)
        monkeypatch.chdir(repo)
        (repo / "sim" / "base.py").write_text(
            "def scale(x):\n    return 3 * x\n"
        )
        result = lint_paths(["sim"], select=["R003"], changed_only=True)
        # base.py changed; caller.py imports it; bystander.py is exempt.
        assert result.files_scanned == 2

    def test_clean_checkout_reports_nothing(self, tmp_path, monkeypatch):
        repo = _scratch_repo(tmp_path)
        monkeypatch.chdir(repo)
        result = lint_paths(["sim"], select=["R003"], changed_only=True)
        assert result.files_scanned == 0
        assert result.findings == []

    def test_changed_findings_still_fire(self, tmp_path, monkeypatch):
        repo = _scratch_repo(tmp_path)
        monkeypatch.chdir(repo)
        (repo / "sim" / "base.py").write_text(_WALL_CLOCK)
        result = lint_paths(["sim"], select=["R003"], changed_only=True)
        assert [f.rule_id for f in result.findings] == ["R003"]

    def test_outside_git_is_usage_error(self, tmp_path, monkeypatch, capsys):
        tree = _stage(tmp_path)
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "nonexistent.git"))
        assert reprolint_main([str(tree), "--changed-only"]) == 2
        assert "changed-only" in capsys.readouterr().err


class TestReportStability:
    """Same tree, different CWDs / job counts / cache states — the
    JSON and SARIF reports must be byte-identical (fingerprints in CI
    diff them across runs)."""

    def _tree(self, root: Path) -> None:
        tree = root / "r018_taint"
        shutil.copytree(FIXTURES / "r018_taint", tree)

    @pytest.mark.parametrize("fmt", ["json", "sarif"])
    def test_two_cwds_byte_identical(self, tmp_path, monkeypatch, fmt):
        for name in ("left", "right"):
            workdir = tmp_path / name
            workdir.mkdir()
            self._tree(workdir)
        outputs = {}
        for name in ("left", "right"):
            monkeypatch.chdir(tmp_path / name)
            out = tmp_path / f"{name}.{fmt}"
            assert (
                reprolint_main(
                    ["r018_taint", "--select", "R018", "--format", fmt,
                     "--output", str(out), "--exit-zero"]
                )
                == 0
            )
            outputs[name] = out.read_bytes()
        assert outputs["left"] == outputs["right"]

    @pytest.mark.parametrize("fmt", ["json", "sarif"])
    def test_jobs_and_cache_states_byte_identical(
        self, tmp_path, monkeypatch, fmt
    ):
        workdir = tmp_path / "work"
        workdir.mkdir()
        self._tree(workdir)
        monkeypatch.chdir(workdir)
        cache_dir = str(tmp_path / "cache")
        variants = {
            "serial-cold": ["--jobs", "1"],
            "parallel-cold": ["--jobs", "4"],
            "cached-cold": ["--jobs", "1", "--cache-dir", cache_dir],
            "cached-warm": ["--jobs", "4", "--cache-dir", cache_dir],
        }
        reports = {}
        for name, extra in variants.items():
            out = tmp_path / f"{name}.{fmt}"
            assert (
                reprolint_main(
                    ["r018_taint", "--select", "R018", "--format", fmt,
                     "--output", str(out), "--exit-zero", *extra]
                )
                == 0
            )
            reports[name] = out.read_bytes()
        assert len(set(reports.values())) == 1, sorted(reports)

"""Golden regression: representative experiments are bit-identical.

The clock/scheduling extraction (core/clock.py, core/scheduling.py)
moved every dispatch decision out of ``sim/server.py`` with the promise
that results change by *zero bits*. These goldens were captured at small
scale before the refactor; e05 (fixed-degree load sweep), e09 (bursty
MMPP2 arrivals with adaptive probing), and e19 (overload: deadlines,
shedding, faults, hedging) jointly cover admission, deadline shedding,
degree granting, probe planning, and escalation — the full extracted
surface. e20 (regime shifts: online tail-feedback control, anomaly
guard, class shedding) was added when the live serving runtime rehosted
the server model on wall-clock schedulers: it exercises the
controller-attachment path that both hostings now share.

If a change legitimately alters results (new model semantics, not a
refactor), regenerate with ``python -m repro --scale small --json-dir
<dir> e05 e09 e19 e20`` (re-serialize with ``json.dumps(...,
sort_keys=True, indent=2)`` as below) and document why in the commit
message.
"""

import json
from pathlib import Path

import pytest

from repro.harness.context import ExperimentContext, Scale
from repro.harness.registry import run_experiment

GOLDEN = Path(__file__).resolve().parent / "fixtures" / "golden"


@pytest.mark.parametrize("experiment_id", ["e05", "e09", "e19", "e20"])
def test_small_scale_output_matches_golden(experiment_id):
    result = run_experiment(
        experiment_id, ExperimentContext(scale=Scale.SMALL)
    )
    text = json.dumps(result.to_json(), sort_keys=True, indent=2) + "\n"
    golden = (GOLDEN / f"{experiment_id}.small.json").read_text()
    assert text == golden

"""Tests for the topical corpus model and topic-coherent queries."""

import numpy as np
import pytest

from repro.corpus.generator import CorpusConfig
from repro.corpus.topical import TopicModel, TopicModelConfig, generate_topical_corpus
from repro.engine.query import Query
from repro.text.zipf import ZipfMandelbrot
from repro.workloads.queries import QueryWorkloadConfig
from repro.workloads.topical import TopicalQueryGenerator

CORPUS_CONFIG = CorpusConfig(
    n_docs=1_500, vocab_size=6_000, mean_doc_length=120, seed=31
)
TOPIC_CONFIG = TopicModelConfig(n_topics=12, topic_vocab=400)


@pytest.fixture(scope="module")
def topical():
    return generate_topical_corpus(CORPUS_CONFIG, TOPIC_CONFIG)


class TestTopicModel:
    def test_topic_terms_within_vocab(self, topical):
        _, model = topical
        assert model.topic_terms.min() >= 0
        assert model.topic_terms.max() < CORPUS_CONFIG.vocab_size

    def test_topic_terms_unique_within_topic(self, topical):
        _, model = topical
        for topic in range(model.n_topics):
            terms = model.topic_terms[topic]
            assert np.unique(terms).shape[0] == terms.shape[0]

    def test_sample_topic_terms_come_from_topic(self, topical, rng):
        _, model = topical
        draws = model.sample_topic_terms(3, rng, 200)
        assert set(draws.tolist()) <= set(model.topic_terms[3].tolist())

    def test_document_topics_one_or_two(self, topical, rng):
        _, model = topical
        sizes = {len(model.sample_document_topics(rng)) for _ in range(200)}
        assert sizes <= {1, 2}
        assert 2 in sizes  # two_topic_fraction 0.3 should appear in 200 draws

    def test_config_validation(self):
        with pytest.raises(Exception):
            TopicModelConfig(n_topics=0)
        with pytest.raises(Exception):
            TopicModelConfig(topical_fraction=1.5)
        with pytest.raises(Exception):
            TopicModel(
                TopicModelConfig(topic_vocab=100),
                vocab_size=50,  # smaller than topic_vocab
                background=ZipfMandelbrot(50),
                rng=np.random.default_rng(0),
            )


class TestTopicalCorpus:
    def test_valid_corpus_structure(self, topical):
        corpus, _ = topical
        assert corpus.n_docs == CORPUS_CONFIG.n_docs
        assert int(corpus.offsets[-1]) == corpus.n_postings
        doc = corpus.document(7)
        assert doc.term_freqs.sum() == doc.length

    def test_reproducible(self):
        a, _ = generate_topical_corpus(CORPUS_CONFIG, TOPIC_CONFIG)
        b, _ = generate_topical_corpus(CORPUS_CONFIG, TOPIC_CONFIG)
        assert np.array_equal(a.terms, b.terms)
        assert np.array_equal(a.freqs, b.freqs)

    def test_cooccurrence_exceeds_independence(self, topical, rng):
        """The point of the model: within-topic term pairs co-occur far
        more often than their popularity product predicts."""
        corpus, model = topical
        df = corpus.document_frequencies()
        n = corpus.n_docs
        ratios = []
        for topic in range(6):
            # Mid-rank topic terms (head terms co-occur trivially).
            t1, t2 = (int(x) for x in model.topic_terms[topic][10:12])
            if df[t1] == 0 or df[t2] == 0:
                continue
            both = 0
            plist1 = set(np.nonzero(_contains(corpus, t1))[0].tolist())
            plist2 = set(np.nonzero(_contains(corpus, t2))[0].tolist())
            both = len(plist1 & plist2)
            expected = df[t1] * df[t2] / n
            if expected > 0:
                ratios.append(both / expected)
        assert ratios, "no measurable pairs"
        assert np.median(ratios) > 2.0, f"co-occurrence lift {ratios}"


def _contains(corpus, term_id):
    """Boolean vector: does each doc contain term_id."""
    out = np.zeros(corpus.n_docs, dtype=bool)
    for doc_id in range(corpus.n_docs):
        start, end = corpus.offsets[doc_id], corpus.offsets[doc_id + 1]
        slice_terms = corpus.terms[start:end]
        idx = np.searchsorted(slice_terms, term_id)
        out[doc_id] = idx < slice_terms.shape[0] and slice_terms[idx] == term_id
    return out


class TestTopicalQueries:
    def test_queries_valid(self, topical):
        _, model = topical
        generator = TopicalQueryGenerator(
            model, QueryWorkloadConfig(vocab_size=CORPUS_CONFIG.vocab_size, seed=2)
        )
        for query in generator.sample_many(100):
            assert isinstance(query, Query)
            assert 1 <= query.n_terms <= 6
            assert all(0 <= t < CORPUS_CONFIG.vocab_size for t in query.term_ids)

    def test_topic_coherence_drives_matching(self, topical):
        """Topic-coherent conjunctive queries find matches much more
        often than queries with the *same term marginals* but broken
        coherence (each term drawn from an independently chosen topic).
        """
        from repro.engine.executor import Engine
        from repro.index.builder import IndexConfig, build_index

        corpus, model = topical
        index = build_index(corpus, IndexConfig(chunk_size=128))
        engine = Engine(index)
        rng = np.random.default_rng(5)

        def sample_terms(coherent: bool) -> Query:
            topic = int(rng.integers(model.n_topics))
            terms = set()
            while len(terms) < 2:
                t = topic if coherent else int(rng.integers(model.n_topics))
                terms.add(int(model.sample_topic_terms(t, rng, 1)[0]))
            return Query.of(sorted(terms), k=10)

        def mean_matches(coherent: bool) -> float:
            return float(np.mean([
                engine.execute(sample_terms(coherent), 1).docs_matched
                for _ in range(80)
            ]))

        assert mean_matches(True) > 1.5 * mean_matches(False)

"""Property round-trips for engine results and cost tables through serde.

The guard these tests provide: every declared field of
:class:`ExecutionResult` — including work counters like
``chunks_skipped`` — must survive :func:`to_jsonable` serialization
with its value intact, and :class:`QueryCostTable` matrices must
round-trip bit-exactly through JSON (and through ``subset``). A future
counter added to either class cannot silently vanish from serialized
experiment output: the field-completeness assertions enumerate the
dataclass/constructor surface at test time.
"""

import dataclasses
import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.query import Query
from repro.engine.results import ChunkSpan, ExecutionResult, make_ranked
from repro.profiles.measurement import QueryCostTable
from repro.util.serde import dumps, to_jsonable

finite = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
counts = st.integers(min_value=0, max_value=10**6)


@st.composite
def execution_results(draw):
    n_results = draw(st.integers(0, 5))
    pairs = [
        (draw(st.integers(0, 10**6)), float(draw(finite)))
        for _ in range(n_results)
    ]
    degree = draw(st.sampled_from([1, 2, 4, 8]))
    latency = draw(st.floats(1e-6, 1e3, allow_nan=False))
    with_spans = draw(st.booleans())
    spans = None
    if with_spans:
        spans = tuple(
            ChunkSpan(worker=w, position=p, start_s=0.0, end_s=float(latency))
            for w, p in [(0, 0), (1, 1)][: draw(st.integers(0, 2))]
        )
    return ExecutionResult(
        query=Query.of(draw(st.lists(st.integers(0, 500), min_size=1,
                                     max_size=4, unique=True)),
                       query_id=draw(st.integers(0, 1000))),
        degree=degree,
        results=make_ranked(pairs),
        latency=latency,
        cpu_time=latency * degree,
        chunks_evaluated=draw(counts),
        postings_scanned=draw(counts),
        docs_matched=draw(counts),
        terminated_early=draw(st.booleans()),
        termination_rule=draw(st.sampled_from([None, "topk-bound", "budget"])),
        worker_busy=tuple(draw(st.lists(finite, max_size=4))),
        chunks_skipped=draw(counts),
        chunk_spans=spans,
        termination_s=draw(st.one_of(st.none(), finite)),
    )


@given(result=execution_results())
@settings(max_examples=60, deadline=None)
def test_execution_result_serializes_every_field(result):
    payload = to_jsonable(result)
    declared = {field.name for field in dataclasses.fields(ExecutionResult)}
    # Field completeness: nothing declared may be dropped, nothing
    # undeclared may appear. A counter added to the dataclass later is
    # automatically covered.
    assert set(payload) == declared
    assert payload["chunks_skipped"] == result.chunks_skipped
    assert payload["chunks_evaluated"] == result.chunks_evaluated
    assert payload["degree"] == result.degree
    assert payload["latency"] == result.latency  # reprolint: disable=R004 -- serialization must preserve the float bit-exactly
    assert len(payload["results"]) == result.n_results
    # The whole thing survives an actual JSON encode/decode.
    parsed = json.loads(dumps(result))
    assert parsed == json.loads(json.dumps(payload))


@st.composite
def cost_tables(draw):
    n = draw(st.integers(1, 6))
    degrees = draw(st.sampled_from([(1,), (1, 2), (1, 2, 4)]))
    d = len(degrees)
    latency = np.array(
        draw(st.lists(st.lists(st.floats(1e-4, 10.0, allow_nan=False),
                               min_size=d, max_size=d),
                      min_size=n, max_size=n))
    )
    cpu = latency * np.asarray(degrees)[None, :]
    chunks = np.array(
        draw(st.lists(st.lists(st.integers(1, 100), min_size=d, max_size=d),
                      min_size=n, max_size=n)),
        dtype=np.int64,
    )
    skipped = np.array(
        draw(st.lists(st.lists(st.integers(0, 100), min_size=d, max_size=d),
                      min_size=n, max_size=n)),
        dtype=np.int64,
    )
    queries = [Query.of([i + 1], query_id=i) for i in range(n)]
    return QueryCostTable(queries, degrees, latency, cpu, chunks,
                          chunks_skipped=skipped)


_TABLE_ARRAYS = ("latency", "cpu", "chunks", "chunks_skipped")


@given(table=cost_tables())
@settings(max_examples=40, deadline=None)
def test_cost_table_matrices_roundtrip_through_json(table):
    payload = {name: to_jsonable(getattr(table, name))
               for name in _TABLE_ARRAYS}
    payload["degrees"] = to_jsonable(table.degrees)
    parsed = json.loads(json.dumps(payload, sort_keys=True))
    rebuilt = QueryCostTable(
        queries=table.queries,
        degrees=parsed["degrees"],
        latency=np.asarray(parsed["latency"], dtype=np.float64),
        cpu=np.asarray(parsed["cpu"], dtype=np.float64),
        chunks=np.asarray(parsed["chunks"], dtype=np.int64),
        chunks_skipped=np.asarray(parsed["chunks_skipped"], dtype=np.int64),
    )
    for name in _TABLE_ARRAYS:
        np.testing.assert_array_equal(
            getattr(rebuilt, name), getattr(table, name), err_msg=name
        )
    assert rebuilt.degrees == table.degrees


@given(table=cost_tables(), data=st.data())
@settings(max_examples=40, deadline=None)
def test_cost_table_subset_preserves_all_counters(table, data):
    mask = np.array(
        data.draw(st.lists(st.booleans(), min_size=table.n_queries,
                           max_size=table.n_queries)),
        dtype=bool,
    )
    sub = table.subset(mask)
    indices = np.nonzero(mask)[0]
    assert sub.n_queries == len(indices)
    for name in _TABLE_ARRAYS:
        np.testing.assert_array_equal(
            getattr(sub, name), getattr(table, name)[indices], err_msg=name
        )
    assert [q.query_id for q in sub.queries] == [
        table.queries[i].query_id for i in indices
    ]

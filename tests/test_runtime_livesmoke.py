"""Wall-clock tier: load generator, live smoke points, smoke harness.

Unlike the FakeClock tests these spend real (but small — fractions of
a second of model time) wall time: they boot the asyncio server on an
AsyncioScheduler and replay scripts through real TCP. Assertions are
structural (every request answered, schema shape, conservation of
queries) or run through wide tolerance bands, so a loaded CI machine
cannot flake them.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.engine.query import Query
from repro.harness.context import ExperimentContext, Scale
from repro.harness.live import (
    engine_search_for,
    run_live_smoke,
    scaled_smoke_system,
    smoke_points,
)
from repro.policies.fixed import FixedPolicy
from repro.profiles.measurement import QueryCostTable
from repro.runtime.loadgen import ReplayOptions, replay_open_loop, run_closed_loop
from repro.runtime.node import ServingConfig, ServingNode
from repro.runtime.serve import AsyncioScheduler, LiveServer
from repro.runtime.smoke import run_live_point
from repro.sim.experiment import LoadPointConfig
from repro.sim.oracle import ServiceOracle
from repro.sim.script import ScriptedArrival, build_arrival_script


def _fast_table(n_queries=8, t1=0.01, degrees=(1, 2, 4)):
    speedup = {1: 1.0, 2: 1.8, 4: 3.0}
    latency = np.stack(
        [np.full(n_queries, t1 / speedup[p]) for p in degrees], axis=1
    )
    cpu = latency * np.asarray(degrees)[None, :]
    chunks = np.ones((n_queries, len(degrees)), dtype=np.int64)
    queries = [Query.of([0], query_id=i) for i in range(n_queries)]
    return QueryCostTable(queries, degrees, latency, cpu, chunks)


async def _boot_live(oracle, policy, **config):
    config.setdefault("n_cores", 4)
    config.setdefault("horizon_s", 100.0)
    scheduler = AsyncioScheduler()
    node = ServingNode(scheduler, oracle, policy, ServingConfig(**config))
    service = LiveServer(node, request_budget_s=30.0)
    serve_task = asyncio.get_running_loop().create_task(
        service.serve("127.0.0.1", 0)
    )
    port = await service.wait_ready()
    return node, service, serve_task, port


class TestLoadgen:
    def test_open_loop_replay_answers_every_request(self):
        async def scenario():
            oracle = ServiceOracle(_fast_table())
            node, service, serve_task, port = await _boot_live(
                oracle, FixedPolicy(2)
            )
            script = [
                ScriptedArrival(0.01 * i, i % oracle.n_queries)
                for i in range(20)
            ]
            replies = await replay_open_loop(
                "127.0.0.1", port, script, ReplayOptions(reply_timeout_s=30.0)
            )
            service.request_shutdown()
            await asyncio.wait_for(serve_task, timeout=10.0)
            return node, replies

        node, replies = asyncio.run(scenario())
        assert len(replies) == 20
        assert all(r is not None for r in replies)
        assert all(r["status"] == "completed" for r in replies)
        # Replies are returned in script order regardless of completion
        # order.
        assert [r["query_index"] for r in replies] == [
            i % 8 for i in range(20)
        ]
        assert node.n_answered == 20

    def test_closed_loop_round_robin(self):
        async def scenario():
            oracle = ServiceOracle(_fast_table())
            node, service, serve_task, port = await _boot_live(
                oracle, FixedPolicy(2)
            )
            script = [ScriptedArrival(0.0, i) for i in range(6)]
            per_client = await run_closed_loop(
                "127.0.0.1", port, script, n_clients=2,
                options=ReplayOptions(reply_timeout_s=30.0),
            )
            service.request_shutdown()
            await asyncio.wait_for(serve_task, timeout=10.0)
            return node, per_client

        node, per_client = asyncio.run(scenario())
        assert len(per_client) == 2
        assert sum(len(chunk) for chunk in per_client) == 6
        flat = [r for chunk in per_client for r in chunk if r]
        assert all(r["status"] == "completed" for r in flat)
        assert node.n_answered == 6


class TestRunLivePoint:
    def test_conserves_queries_and_matches_schema(self):
        oracle = ServiceOracle(_fast_table())
        config = LoadPointConfig(rate=60.0, duration=0.5, warmup=0.1,
                                 n_cores=4, seed=1)
        script = build_arrival_script(oracle.n_queries, config)
        summary, node = asyncio.run(
            run_live_point(oracle, FixedPolicy(2), config, script,
                           dilation=2.0)
        )
        # Open-loop replay awaits every reply: each scripted query was
        # either answered or shed by the time it returns.
        assert node.n_answered + node.server.n_shed == len(script)
        assert node.server.n_shed == 0
        assert summary.policy == "fixed-2"
        assert summary.observed > 0
        assert summary.mean_latency > 0


class TestSmokeHarness:
    @pytest.fixture(scope="class")
    def context(self):
        return ExperimentContext(scale=Scale.SMALL, seed=0)

    def test_scaled_smoke_system_preserves_shape(self, context):
        system = context.system
        scaled, factor = scaled_smoke_system(system, target_mean_service_s=0.02)
        assert factor > 1.0
        table, orig = scaled.cost_table, system.cost_table
        assert np.mean(table.sequential_latencies()) == pytest.approx(0.02)
        # Uniform scaling: every speedup ratio survives.
        assert np.allclose(table.latency, orig.latency * factor)
        assert np.allclose(table.cpu, orig.cpu * factor)
        assert table.degrees == orig.degrees
        # Utilization math rescales consistently.
        assert scaled.saturation_rate == pytest.approx(
            system.saturation_rate / factor
        )
        # Already-slow systems pass through untouched.
        same, factor2 = scaled_smoke_system(scaled, target_mean_service_s=0.02)
        assert same is scaled and factor2 == 1.0

    def test_smoke_points_cover_light_heavy_overload(self, context):
        system, _ = scaled_smoke_system(context.system)
        points = smoke_points(system, duration_s=1.0, warmup_s=0.25)
        assert [p.name for p in points] == [
            "e05-light", "e05-heavy", "e19-overload"
        ]
        light, heavy, overload = points
        assert light.config.rate < heavy.config.rate < overload.config.rate
        assert light.config.deadline is None
        assert overload.config.deadline is not None
        assert overload.config.max_queue_length == 32 * system.n_cores

    def test_engine_search_hook_returns_ranked_results(self, context):
        search = engine_search_for(context.system, k=5)
        results = search(0, 2)
        assert 0 < len(results) <= 5
        scores = [score for _, score in results]
        assert scores == sorted(scores, reverse=True)

    def test_run_live_smoke_report_schema(self, context, tmp_path):
        out = tmp_path / "live_parity.json"
        # Wide bands: this test pins the machinery and report schema;
        # the calibrated-band validation is the CI livesmoke step.
        wide = {"throughput": 2.0, "shed_rate": 1.0}
        report, ok = run_live_smoke(
            context=context, duration_s=0.4, dilation=2.0, seed=0,
            tolerances=wide, output=str(out),
        )
        assert ok
        assert report["ok"] and report["time_scale"] > 1.0
        assert [p["point"] for p in report["points"]] == [
            "e05-light", "e05-heavy", "e19-overload"
        ]
        for point in report["points"]:
            assert point["n_arrivals"] > 0
            assert set(point["metrics"]) == set(wide)
            assert point["sim_summary"]["policy"] == "adaptive"
            assert point["live_summary"]["policy"] == "adaptive"
        on_disk = json.loads(out.read_text())
        assert on_disk["points"][0]["point"] == "e05-light"
        assert on_disk["tolerances"] == wide

"""Tests for query workload generation and the workbench."""

import numpy as np
import pytest

from repro.engine.query import MatchMode
from repro.workloads.queries import QueryGenerator, QueryWorkloadConfig
from repro.workloads.workbench import (
    WorkbenchConfig,
    build_workbench,
    cached_workbench,
)


class TestQueryGenerator:
    def test_term_counts_within_bounds(self):
        config = QueryWorkloadConfig(vocab_size=500, max_terms=4, seed=1)
        generator = QueryGenerator(config)
        for query in generator.sample_many(200):
            assert 1 <= query.n_terms <= 4

    def test_terms_within_vocabulary(self):
        config = QueryWorkloadConfig(vocab_size=100, seed=2)
        generator = QueryGenerator(config)
        for query in generator.sample_many(100):
            assert all(0 <= t < 100 for t in query.term_ids)

    def test_reproducible(self):
        config = QueryWorkloadConfig(vocab_size=300, seed=7)
        a = QueryGenerator(config).sample_many(50)
        b = QueryGenerator(config).sample_many(50)
        assert [q.term_ids for q in a] == [q.term_ids for q in b]

    def test_query_ids_sequential(self):
        generator = QueryGenerator(QueryWorkloadConfig(vocab_size=100, seed=0))
        queries = generator.sample_many(5)
        assert [q.query_id for q in queries] == [0, 1, 2, 3, 4]

    def test_mean_term_count_near_geometric(self):
        config = QueryWorkloadConfig(
            vocab_size=5_000, term_count_p=0.5, max_terms=20, seed=3
        )
        counts = [q.n_terms for q in QueryGenerator(config).sample_many(3_000)]
        assert np.mean(counts) == pytest.approx(2.0, rel=0.1)

    def test_popular_terms_dominate(self):
        config = QueryWorkloadConfig(vocab_size=10_000, seed=4)
        terms = [
            t for q in QueryGenerator(config).sample_many(1_000) for t in q.term_ids
        ]
        head_fraction = np.mean(np.asarray(terms) < 100)
        assert head_fraction > 0.3

    def test_mode_propagates(self):
        config = QueryWorkloadConfig(vocab_size=100, mode=MatchMode.ANY, seed=5)
        assert QueryGenerator(config).sample().mode is MatchMode.ANY

    def test_iterator_protocol(self):
        generator = QueryGenerator(QueryWorkloadConfig(vocab_size=100, seed=6))
        stream = iter(generator)
        assert next(stream).query_id == 0
        assert next(stream).query_id == 1

    def test_invalid_config_rejected(self):
        with pytest.raises(Exception):
            QueryWorkloadConfig(term_count_p=0.0)
        with pytest.raises(Exception):
            QueryWorkloadConfig(max_terms=0)


class TestWorkbench:
    def test_vocab_alignment_enforced(self):
        config = WorkbenchConfig.small()
        assert config.workload.vocab_size == config.corpus.vocab_size

    def test_build_produces_consistent_stack(self, small_workbench):
        assert small_workbench.index.n_docs == small_workbench.corpus.n_docs
        assert small_workbench.engine.index is small_workbench.index

    def test_query_generator_streams_independent(self, small_workbench):
        a = small_workbench.query_generator("a").sample()
        b = small_workbench.query_generator("b").sample()
        a2 = small_workbench.query_generator("a").sample()
        assert a.term_ids == a2.term_ids
        assert a.term_ids != b.term_ids or a.k != b.k or True

    def test_cached_workbench_returns_same_object(self):
        config = WorkbenchConfig.small(seed=99)
        assert cached_workbench(config) is cached_workbench(config)

    def test_different_seeds_differ(self):
        a = build_workbench(WorkbenchConfig.small(seed=1))
        b = build_workbench(WorkbenchConfig.small(seed=2))
        assert not np.array_equal(a.corpus.terms, b.corpus.terms)

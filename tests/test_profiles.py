"""Tests for profiles: measurement, speedup, service-time distribution."""

import numpy as np
import pytest

from repro.engine.query import Query
from repro.errors import ProfileError
from repro.profiles.measurement import (
    MeasurementConfig,
    measure_cost_table,
)
from repro.profiles.servicetime import ServiceTimeDistribution
from repro.profiles.speedup import ParametricSpeedup, SpeedupProfile


@pytest.fixture(scope="module")
def cost_table(small_engine, sample_queries):
    return measure_cost_table(
        small_engine,
        sample_queries,
        MeasurementConfig(degrees=(1, 2, 4, 8), n_queries=len(sample_queries)),
    )


class TestMeasurement:
    def test_shapes(self, cost_table, sample_queries):
        assert cost_table.n_queries == len(sample_queries)
        assert cost_table.latency.shape == (len(sample_queries), 4)

    def test_degree_lookup(self, cost_table):
        assert cost_table.degree_column(1) == 0
        assert cost_table.degree_column(8) == 3
        with pytest.raises(ProfileError):
            cost_table.degree_column(5)

    def test_latencies_positive(self, cost_table):
        assert np.all(cost_table.latency > 0)
        assert np.all(cost_table.cpu > 0)

    def test_cpu_dominates_latency_for_parallel(self, cost_table):
        for degree in (2, 4, 8):
            col = cost_table.degree_column(degree)
            assert np.all(cost_table.cpu[:, col] >= cost_table.latency[:, col] - 1e-12)

    def test_speedups_bounded(self, cost_table):
        for degree in (2, 4, 8):
            speedups = cost_table.speedups(degree)
            assert np.all(speedups <= degree + 1e-9)
            assert np.all(speedups > 0)

    def test_work_inflation_at_least_one(self, cost_table):
        for degree in (2, 4, 8):
            assert np.all(cost_table.work_inflation(degree) >= 1.0 - 1e-9)
        assert cost_table.mean_work_inflation(4) >= 1.0

    def test_subset(self, cost_table):
        mask = cost_table.sequential_latencies() > np.median(
            cost_table.sequential_latencies()
        )
        subset = cost_table.subset(mask)
        assert subset.n_queries == int(mask.sum())
        assert subset.degrees == cost_table.degrees

    def test_config_requires_degree_one(self):
        with pytest.raises(Exception):
            MeasurementConfig(degrees=(2, 4))

    def test_config_requires_sorted_unique_degrees(self):
        with pytest.raises(Exception):
            MeasurementConfig(degrees=(1, 4, 2))
        with pytest.raises(Exception):
            MeasurementConfig(degrees=(1, 2, 2))

    def test_degree_beyond_engine_max_rejected(self, small_engine, sample_queries):
        with pytest.raises(ProfileError):
            measure_cost_table(
                small_engine,
                sample_queries[:5],
                MeasurementConfig(degrees=(1, 64)),
            )

    def test_chunks_skipped_defaults_to_zeros(self, cost_table):
        # The default engine keeps skip_chunks off, so the counter is
        # recorded but all-zero; shape tracks (queries, degrees).
        assert cost_table.chunks_skipped.shape == cost_table.chunks.shape
        assert np.all(cost_table.chunks_skipped == 0)
        assert cost_table.chunks_skipped.dtype == np.int64

    def test_chunks_skipped_shape_validated(self, cost_table):
        from repro.profiles.measurement import QueryCostTable

        with pytest.raises(ProfileError):
            QueryCostTable(
                cost_table.queries,
                cost_table.degrees,
                cost_table.latency,
                cost_table.cpu,
                cost_table.chunks,
                chunks_skipped=np.zeros((1, 1), dtype=np.int64),
            )

    def test_chunks_skipped_subset_and_measurement(
        self, small_workbench, sample_queries
    ):
        from repro.engine.executor import Engine, EngineConfig
        from repro.engine.termination import TerminationConfig

        engine = Engine(
            small_workbench.index,
            EngineConfig(
                termination=TerminationConfig(
                    match_budget=None, use_score_bound=True, skip_chunks=True
                )
            ),
        )
        table = measure_cost_table(
            engine,
            sample_queries[:25],
            MeasurementConfig(degrees=(1, 2), n_queries=25),
        )
        assert table.chunks_skipped.sum() > 0, "skipping never fired"
        for i, query in enumerate(sample_queries[:25]):
            result = engine.execute(query, 1)
            assert table.chunks_skipped[i, 0] == result.chunks_skipped
        mask = np.zeros(25, dtype=bool)
        mask[:5] = True
        subset = table.subset(mask)
        assert np.array_equal(subset.chunks_skipped, table.chunks_skipped[:5])


class TestSpeedupProfile:
    def test_class_assignment_balanced(self, cost_table):
        profile = SpeedupProfile(cost_table, n_classes=3)
        counts = np.bincount(profile.class_of_query, minlength=3)
        assert counts.min() >= cost_table.n_queries // 5

    def test_long_class_has_best_speedup(self, cost_table):
        profile = SpeedupProfile(cost_table, n_classes=3)
        assert profile.speedup(4, 2) > profile.speedup(4, 0)

    def test_degree_one_speedup_is_one(self, cost_table):
        profile = SpeedupProfile(cost_table)
        for cls in range(profile.n_classes):
            assert profile.speedup(1, cls) == pytest.approx(1.0)

    def test_classify_consistent_with_edges(self, cost_table):
        profile = SpeedupProfile(cost_table)
        t1 = cost_table.sequential_latencies()
        assert profile.classify(float(t1.min())) == 0
        assert profile.classify(float(t1.max())) == profile.n_classes - 1

    def test_efficiency_inverse_of_inflation(self, cost_table):
        profile = SpeedupProfile(cost_table)
        for degree in cost_table.degrees:
            assert profile.efficiency(degree) == pytest.approx(
                1.0 / profile.work_inflation(degree)
            )

    def test_rows_cover_all_classes_and_degrees(self, cost_table):
        profile = SpeedupProfile(cost_table)
        rows = profile.rows()
        assert len(rows) == profile.n_classes * len(cost_table.degrees)

    def test_invalid_class_rejected(self, cost_table):
        profile = SpeedupProfile(cost_table)
        with pytest.raises(ProfileError):
            profile.speedup(4, 99)


class TestParametricSpeedup:
    def test_degree_one_is_unity(self):
        assert ParametricSpeedup(0.1, 0.02).speedup(1) == pytest.approx(1.0)

    def test_amdahl_limit(self):
        model = ParametricSpeedup(serial=0.25, waste=0.0)
        assert model.speedup(1000) <= 4.0 + 1e-6

    def test_waste_creates_interior_optimum(self):
        model = ParametricSpeedup(serial=0.05, waste=0.05)
        speedups = [model.speedup(p) for p in range(1, 33)]
        best = int(np.argmax(speedups)) + 1
        assert 1 < best < 32

    def test_fit_recovers_parameters(self):
        truth = ParametricSpeedup(serial=0.12, waste=0.015)
        degrees = [1, 2, 3, 4, 6, 8, 12, 16]
        fitted = ParametricSpeedup.fit(degrees, [truth.speedup(p) for p in degrees])
        assert fitted.serial == pytest.approx(truth.serial, abs=0.02)
        assert fitted.waste == pytest.approx(truth.waste, abs=0.005)

    def test_fit_profile(self, cost_table):
        profile = SpeedupProfile(cost_table)
        fitted = ParametricSpeedup.fit_profile(profile)
        assert 0.0 <= fitted.serial <= 1.0
        assert fitted.waste >= 0.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ProfileError):
            ParametricSpeedup.fit([], [])
        with pytest.raises(ProfileError):
            ParametricSpeedup.fit([1, 2], [1.0, -1.0])
        with pytest.raises(ProfileError):
            ParametricSpeedup(0.1, 0.0).speedup(0)


class TestServiceTimeDistribution:
    def test_summary_fields(self, cost_table):
        dist = ServiceTimeDistribution(cost_table.sequential_latencies())
        summary = dist.summary()
        assert summary["n"] == cost_table.n_queries
        assert summary["p99_ms"] >= summary["p50_ms"]

    def test_percentile_monotone(self, cost_table):
        dist = ServiceTimeDistribution(cost_table.sequential_latencies())
        ps = dist.percentiles([10, 50, 90, 99])
        assert np.all(np.diff(ps) >= 0)

    def test_ecdf_range(self, cost_table):
        dist = ServiceTimeDistribution(cost_table.sequential_latencies())
        xs, fs = dist.ecdf(50)
        assert fs[0] == 0.0 and fs[-1] == 1.0
        assert np.all(np.diff(xs) >= 0)

    def test_lognormal_fit_reasonable(self, rng):
        samples = rng.lognormal(mean=-6.0, sigma=1.0, size=5000)
        fit = ServiceTimeDistribution(samples).fit_lognormal()
        assert fit.mu == pytest.approx(-6.0, abs=0.1)
        assert fit.sigma == pytest.approx(1.0, abs=0.1)

    def test_resample_within_support(self, cost_table, rng):
        dist = ServiceTimeDistribution(cost_table.sequential_latencies())
        draws = dist.resample(rng, 100)
        assert set(draws.tolist()) <= set(dist.samples.tolist())

    def test_tertile_labels(self, cost_table):
        dist = ServiceTimeDistribution(cost_table.sequential_latencies())
        labels = dist.classify_tertiles()
        assert set(labels.tolist()) <= {0, 1, 2}

    def test_invalid_samples_rejected(self):
        with pytest.raises(ProfileError):
            ServiceTimeDistribution([])
        with pytest.raises(ProfileError):
            ServiceTimeDistribution([1.0, -1.0])
        with pytest.raises(ProfileError):
            ServiceTimeDistribution([1.0, float("inf")])

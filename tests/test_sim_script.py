"""Tests for scripted arrival streams (sim/script.py).

The script is the foundation of sim-vs-live parity: it must reproduce
run_load_point's online RNG draws exactly, and replaying it must give
the same summary as the online run.
"""

import json

import numpy as np
import pytest

from repro.engine.query import Query
from repro.policies.fixed import FixedPolicy, SequentialPolicy
from repro.profiles.measurement import QueryCostTable
from repro.sim.experiment import LoadPointConfig, run_load_point
from repro.sim.oracle import ServiceOracle
from repro.sim.script import (
    ScriptedArrival,
    build_arrival_script,
    run_scripted_point,
)
from repro.util.serde import to_jsonable


def _constant_table(n_queries=10, t1=1.0, degrees=(1, 2, 4), speedup=None):
    speedup = speedup or {1: 1.0, 2: 1.8, 4: 3.0}
    latency = np.stack(
        [np.full(n_queries, t1 / speedup[p]) for p in degrees], axis=1
    )
    cpu = latency * np.asarray(degrees)[None, :]
    chunks = np.ones((n_queries, len(degrees)), dtype=np.int64)
    queries = [Query.of([0], query_id=i) for i in range(n_queries)]
    return QueryCostTable(queries, degrees, latency, cpu, chunks)


def _summary_json(summary):
    # LoadPointSummary carries NaN fields (goodput without an SLO), and
    # NaN != NaN breaks dataclass equality; canonical JSON compares the
    # whole summary including NaNs.
    return json.dumps(to_jsonable(summary), sort_keys=True)


class TestBuildArrivalScript:
    def test_within_horizon_sorted_and_in_range(self):
        config = LoadPointConfig(rate=8.0, duration=5.0, warmup=1.0,
                                 n_cores=4, seed=3)
        script = build_arrival_script(10, config)
        assert len(script) > 10
        times = [a.time_s for a in script]
        assert times == sorted(times)
        assert all(0 < t <= config.duration for t in times)
        assert all(0 <= a.query_index < 10 for a in script)

    def test_seed_determinism(self):
        config = LoadPointConfig(rate=8.0, duration=5.0, warmup=1.0,
                                 n_cores=4, seed=3)
        assert build_arrival_script(10, config) == build_arrival_script(10, config)
        other = build_arrival_script(
            10, LoadPointConfig(rate=8.0, duration=5.0, warmup=1.0,
                                n_cores=4, seed=4)
        )
        assert other != build_arrival_script(10, config)

    def test_class_labels_read_from_arrival_process(self):
        class LabelledArrivals:
            """Constant-gap arrivals tagging alternate classes."""

            def __init__(self):
                self.n = 0
                self.last_class = None

            def next_interarrival(self):
                self.n += 1
                self.last_class = "head" if self.n % 2 else "tail"
                return 0.5

        config = LoadPointConfig(rate=2.0, duration=3.0, warmup=0.0,
                                 n_cores=2, seed=0)
        script = build_arrival_script(5, config, arrivals=LabelledArrivals())
        assert [a.query_class for a in script[:4]] == [
            "head", "tail", "head", "tail"
        ]

    def test_rejects_bad_n_queries(self):
        config = LoadPointConfig(rate=2.0, duration=1.0, warmup=0.0,
                                 n_cores=2)
        with pytest.raises(Exception):
            build_arrival_script(0, config)


class TestScriptedVsOnline:
    @pytest.mark.parametrize("deadline,max_queue", [
        (None, None),
        (1.5, 6),
    ])
    def test_scripted_replay_matches_online_run(self, deadline, max_queue):
        """run_scripted_point on the built script must equal the online
        run_load_point draw for draw — the whole parity tier rests on
        this equivalence."""
        oracle = ServiceOracle(_constant_table())
        config = LoadPointConfig(
            rate=6.0, duration=6.0, warmup=1.0, n_cores=4, seed=7,
            deadline=deadline, max_queue_length=max_queue,
        )
        online = run_load_point(oracle, FixedPolicy(2), config)
        script = build_arrival_script(oracle.n_queries, config)
        scripted, server = run_scripted_point(
            oracle, FixedPolicy(2), config, script
        )
        assert _summary_json(online) == _summary_json(scripted)
        # The server counts every shed; the summary only the
        # measurement window.
        assert server.n_shed >= online.n_shed

    def test_scripted_point_deterministic_across_runs(self):
        oracle = ServiceOracle(_constant_table())
        config = LoadPointConfig(rate=10.0, duration=4.0, warmup=0.5,
                                 n_cores=4, seed=2, deadline=2.0,
                                 max_queue_length=8)
        script = build_arrival_script(oracle.n_queries, config)
        outputs = {
            _summary_json(
                run_scripted_point(oracle, SequentialPolicy(), config, script)[0]
            )
            for _ in range(3)
        }
        assert len(outputs) == 1

    def test_explicit_script_replay(self):
        # Hand-written scripts (not built from a seed) replay as given.
        oracle = ServiceOracle(_constant_table())
        config = LoadPointConfig(rate=1.0, duration=10.0, warmup=0.0,
                                 n_cores=2)
        script = [
            ScriptedArrival(1.0, 0),
            ScriptedArrival(2.0, 1),
            ScriptedArrival(2.0, 2),
        ]
        summary, server = run_scripted_point(
            oracle, SequentialPolicy(), config, script
        )
        assert summary.observed == 3
        assert server.n_shed == 0

"""Tests for the experiment harness: registry, results, fast experiments.

The sim-heavy experiments (E5, E6, E8) are exercised by the benchmark
suite; here we run the cheap ones end-to-end at small scale and unit-test
the harness plumbing.
"""

import pytest

from repro.errors import ConfigurationError
from repro.harness.context import ExperimentContext, Scale
from repro.harness.registry import EXPERIMENTS, TITLES, get_experiment, run_experiment
from repro.harness.result import CheckOutcome, ExperimentResult
from repro.util.serde import dumps
from repro.util.tables import Table


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(scale=Scale.SMALL)


class TestRegistry:
    def test_all_experiments_registered(self):
        assert sorted(EXPERIMENTS) == [f"e{i:02d}" for i in range(1, 21)]

    def test_titles_present(self):
        assert all(TITLES[eid] for eid in EXPERIMENTS)

    def test_lookup_case_insensitive(self):
        assert get_experiment("E01") is EXPERIMENTS["e01"]

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            get_experiment("e99")


class TestResult:
    def test_render_includes_tables_and_checks(self):
        result = ExperimentResult("e00", "Title", "Desc")
        table = Table(["a"], title="T")
        table.add_row([1])
        result.add_table(table)
        result.add_check("always", True, "fine")
        text = result.render()
        assert "E00" in text and "T" in text and "[PASS] always" in text

    def test_all_checks_passed(self):
        result = ExperimentResult("e00", "t", "d")
        result.add_check("a", True)
        assert result.all_checks_passed
        result.add_check("b", False)
        assert not result.all_checks_passed

    def test_to_json_serializable(self):
        result = ExperimentResult("e00", "t", "d")
        result.add_check("a", True, "ok")
        result.data = {"x": [1, 2]}
        assert dumps(result.to_json())

    def test_check_outcome_render(self):
        assert CheckOutcome("n", False, "why").render() == "[FAIL] n — why"


@pytest.mark.parametrize("experiment_id", ["e01", "e02", "e03", "e04"])
class TestFastExperiments:
    def test_runs_and_passes(self, ctx, experiment_id):
        result = run_experiment(experiment_id, ctx)
        assert result.experiment_id == experiment_id
        assert result.tables, "experiment produced no tables"
        failed = [c for c in result.checks if not c.passed]
        assert not failed, f"failed checks: {[c.name for c in failed]}"

    def test_json_roundtrip(self, ctx, experiment_id):
        result = run_experiment(experiment_id, ctx)
        payload = result.to_json()
        assert payload["experiment_id"] == experiment_id
        assert dumps(payload)


class TestSimExperiments:
    """One representative sim-backed experiment end-to-end (small scale)."""

    def test_e07_degree_mix(self, ctx):
        result = run_experiment("e07", ctx)
        assert result.all_checks_passed, result.render()

    def test_e11_validation(self, ctx):
        result = run_experiment("e11", ctx)
        assert result.all_checks_passed, result.render()


class TestContext:
    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert Scale.from_env() is Scale.SMALL
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ConfigurationError):
            Scale.from_env()
        monkeypatch.delenv("REPRO_SCALE")
        assert Scale.from_env() is Scale.REFERENCE

    def test_system_cached_per_scale(self, ctx):
        assert ctx.system is ExperimentContext(scale=Scale.SMALL).system

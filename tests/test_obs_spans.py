"""Unit tests for the observability layer: spans, builders, tracer,
metrics registry, timeline sampler, export, and rendering.

The trace-backed *invariant* tests (re-deriving experiment aggregates
from spans) live in test_obs_invariants.py; determinism pins are in
test_obs_determinism.py; randomized span-algebra checks are in
test_property_obs.py.
"""

import json

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.obs.export import (
    config_hash,
    export_timeline_jsonl,
    export_traces_jsonl,
    git_revision,
    load_jsonl,
    run_manifest,
    span_to_jsonable,
    trace_to_jsonable,
    write_manifest,
)
from repro.obs.registry import (
    Counter,
    Histogram,
    MetricsRegistry,
    RunObserver,
    TimelineSampler,
)
from repro.obs.render import (
    render_timeline,
    render_trace_report,
    render_waterfall,
    summarize_traces,
)
from repro.obs.spans import (
    CLUSTER,
    EVENT_ADMIT,
    EVENT_DEGREE_GRANT,
    EVENT_ENQUEUE,
    EVENT_ESCALATE,
    EVENT_FINALIZE,
    EVENT_HEDGE,
    EVENT_SHED,
    EXEC,
    NULL_TRACER,
    PHASE,
    QUEUE,
    QUERY,
    SHARD,
    ClusterTraceBuilder,
    NullTracer,
    QueryTraceBuilder,
    RecordingTracer,
    Span,
    SpanEvent,
    Tracer,
)
from repro.sim.engine import Simulator


def _completed_trace(arrival=1.0, start=1.5, end=2.5, trace_id=0, server_id=None):
    """A well-formed completed node trace: queue [1.0, 1.5], exec [1.5, 2.5]."""
    builder = QueryTraceBuilder(trace_id, 7, arrival, server_id=server_id)
    builder.degree_granted(start, requested=4, granted=2, free_cores=3)
    builder.phase_started(start, degree=2)
    builder.phase_ended(end)
    return builder.completed(end)


class TestSpanAlgebra:
    def test_duration_and_child_lookup(self):
        inner = Span("a", 1.0, 2.0)
        outer = Span("root", 0.0, 3.0, children=(inner,))
        assert outer.duration_s == pytest.approx(3.0)
        assert outer.child("a") is inner
        assert outer.child("missing") is None

    def test_validate_accepts_well_formed_tree(self):
        grand = Span("g", 1.0, 1.5)
        tree = Span(
            "root", 0.0, 4.0,
            children=(
                Span("a", 0.5, 2.0, children=(grand,)),
                Span("b", 2.0, 4.0),
            ),
            events=(SpanEvent("e", 3.0),),
        )
        tree.validate()  # must not raise

    def test_validate_rejects_backwards_span(self):
        with pytest.raises(SimulationError, match="backwards"):
            Span("bad", 2.0, 1.0).validate()

    def test_validate_rejects_child_escaping_parent(self):
        tree = Span("root", 0.0, 1.0, children=(Span("late", 0.5, 2.0),))
        with pytest.raises(SimulationError, match="escapes"):
            tree.validate()

    def test_validate_rejects_out_of_order_children(self):
        tree = Span(
            "root", 0.0, 4.0,
            children=(Span("b", 2.0, 3.0), Span("a", 1.0, 2.0)),
        )
        with pytest.raises(SimulationError, match="out of order"):
            tree.validate()

    def test_validate_rejects_event_outside_interval(self):
        tree = Span("root", 0.0, 1.0, events=(SpanEvent("late", 2.0),))
        with pytest.raises(SimulationError, match="outside"):
            tree.validate()

    def test_validate_recurses_into_children(self):
        tree = Span(
            "root", 0.0, 5.0,
            children=(Span("mid", 1.0, 4.0, children=(Span("bad", 3.0, 2.0),)),),
        )
        with pytest.raises(SimulationError, match="backwards"):
            tree.validate()


class TestQueryTraceBuilder:
    def test_completed_trace_structure(self):
        trace = _completed_trace(server_id="shard3")
        trace.root.validate()
        assert trace.outcome == "completed"
        assert trace.completed and trace.answered
        assert trace.server_id == "shard3"
        assert trace.query_index == 7
        assert trace.root.name == QUERY
        assert [c.name for c in trace.root.children] == [QUEUE, EXEC]
        assert trace.arrival_s == pytest.approx(1.0)
        assert trace.latency_s == pytest.approx(1.5)
        assert trace.queue_delay_s() == pytest.approx(0.5)
        assert trace.service_s() == pytest.approx(1.0)
        # Queue + service decompose the whole lifetime.
        assert trace.queue_delay_s() + trace.service_s() == pytest.approx(
            trace.latency_s
        )

    def test_events_record_the_decisions(self):
        trace = _completed_trace()
        names = [e.name for e in trace.root.events]
        assert names == [EVENT_ENQUEUE, EVENT_ADMIT, EVENT_DEGREE_GRANT]
        grant = trace.root.events[-1]
        assert grant.attrs == {"requested": 4, "granted": 2, "free_cores": 3}
        # The exec span carries the same grant attributes.
        assert trace.root.child(EXEC).attrs["granted"] == 2

    def test_phases_become_exec_children(self):
        builder = QueryTraceBuilder(0, 0, 0.0)
        builder.degree_granted(0.0, requested=8, granted=8, free_cores=8)
        builder.phase_started(0.0, degree=1, kind="probe")
        builder.phase_ended(0.2)
        builder.escalated(0.2, target=8, actual=4)
        builder.phase_started(0.2, degree=4, kind="escalated")
        builder.phase_ended(0.5)
        trace = builder.completed(0.5)
        trace.root.validate()
        phases = trace.root.child(EXEC).children
        assert [p.name for p in phases] == [PHASE, PHASE]
        assert [p.attrs["kind"] for p in phases] == ["probe", "escalated"]
        assert [p.attrs["degree"] for p in phases] == [1, 4]
        escalate = [e for e in trace.root.events if e.name == EVENT_ESCALATE]
        assert len(escalate) == 1
        assert escalate[0].attrs == {"target": 8, "actual": 4}

    def test_shed_trace(self):
        builder = QueryTraceBuilder(3, 11, 1.0)
        trace = builder.shed(1.25, "deadline")
        trace.root.validate()
        assert trace.outcome == "shed:deadline"
        assert trace.shed_reason == "deadline"
        assert not trace.completed and not trace.answered
        assert trace.queue_delay_s() == pytest.approx(0.25)
        assert trace.service_s() == 0.0
        assert trace.root.events[-1].name == EVENT_SHED
        assert trace.root.events[-1].attrs == {"reason": "deadline"}

    def test_shed_at_arrival_still_records_queue_span(self):
        # Admission shedding happens at the arrival instant; the queue
        # span is empty but present so consumers need no special case.
        trace = QueryTraceBuilder(0, 0, 2.0).shed(2.0, "admission")
        trace.root.validate()
        assert trace.root.child(QUEUE) is not None
        assert trace.queue_delay_s() == 0.0

    def test_completed_before_grant_rejected(self):
        with pytest.raises(SimulationError, match="degree_granted"):
            QueryTraceBuilder(0, 0, 0.0).completed(1.0)

    def test_completed_with_open_phase_rejected(self):
        builder = QueryTraceBuilder(0, 0, 0.0)
        builder.degree_granted(0.0, requested=1, granted=1, free_cores=4)
        builder.phase_started(0.0, degree=1)
        with pytest.raises(SimulationError, match="open phase"):
            builder.completed(1.0)

    def test_phase_ended_without_open_phase_rejected(self):
        with pytest.raises(SimulationError, match="open phase"):
            QueryTraceBuilder(0, 0, 0.0).phase_ended(1.0)


class TestClusterTraceBuilder:
    def test_full_answer(self):
        builder = ClusterTraceBuilder(0, 0.0, n_shards=2)
        builder.shard_submitted(0.0, 0, query_index=5)
        builder.shard_submitted(0.0, 1, query_index=5)
        builder.shard_responded(0.4, 0)
        builder.shard_responded(0.6, 1)
        trace = builder.finalized(
            0.6, "full", n_responded=2, n_shards=2, timed_out=False, quorum=None
        )
        trace.root.validate()
        assert trace.outcome == "full" and trace.answered
        assert trace.root.name == CLUSTER
        shards = trace.root.children
        assert [s.name for s in shards] == [SHARD, SHARD]
        assert [s.attrs["outcome"] for s in shards] == ["won", "won"]
        assert shards[0].duration_s == pytest.approx(0.4)
        finalize = trace.root.events[-1]
        assert finalize.name == EVENT_FINALIZE
        assert finalize.attrs["coverage"] == pytest.approx(1.0)

    def test_outstanding_attempts_abandoned_at_finalize(self):
        builder = ClusterTraceBuilder(0, 0.0, n_shards=3)
        for shard in range(3):
            builder.shard_submitted(0.0, shard, query_index=1)
        builder.shard_responded(0.2, 0)
        builder.shard_responded(0.3, 1)
        trace = builder.finalized(
            0.3, "partial", n_responded=2, n_shards=3, timed_out=False, quorum=2
        )
        trace.root.validate()
        outcomes = {s.attrs["shard"]: s.attrs["outcome"] for s in trace.root.children}
        assert outcomes == {0: "won", 1: "won", 2: "abandoned"}
        abandoned = [s for s in trace.root.children if s.attrs["shard"] == 2][0]
        assert abandoned.end_s == pytest.approx(0.3)

    def test_hedge_records_replica_attempt(self):
        builder = ClusterTraceBuilder(0, 0.0, n_shards=2)
        builder.shard_submitted(0.0, 0, query_index=1)
        builder.shard_submitted(0.0, 1, query_index=1)
        builder.shard_responded(0.1, 0)
        builder.hedged(0.2, [1])
        builder.shard_submitted(0.2, 1, query_index=1, replica=True)
        builder.shard_responded(0.3, 1, replica=True, won=True)
        builder.shard_responded(0.5, 1, won=False)
        trace = builder.finalized(
            0.5, "full", n_responded=2, n_shards=2, timed_out=False, quorum=None
        )
        trace.root.validate()
        attempts = {
            (s.attrs["shard"], s.attrs["replica"]): s.attrs["outcome"]
            for s in trace.root.children
        }
        assert attempts == {
            (0, False): "won", (1, False): "lost", (1, True): "won",
        }
        hedge = [e for e in trace.root.events if e.name == EVENT_HEDGE]
        assert hedge and hedge[0].attrs == {"shards": [1]}

    def test_shard_shed_attempt(self):
        builder = ClusterTraceBuilder(0, 0.0, n_shards=1)
        builder.shard_submitted(0.0, 0, query_index=1)
        builder.shard_shed(0.0, 0, "admission")
        trace = builder.finalized(
            0.1, "failed", n_responded=0, n_shards=1, timed_out=True, quorum=None
        )
        assert trace.root.children[0].attrs["outcome"] == "shed:admission"
        assert not trace.answered

    def test_children_sorted_by_start_time(self):
        builder = ClusterTraceBuilder(0, 0.0, n_shards=2)
        builder.shard_submitted(0.0, 1, query_index=1)
        builder.shard_submitted(0.0, 0, query_index=1)
        builder.shard_submitted(0.5, 0, query_index=1, replica=True)
        trace = builder.finalized(
            1.0, "failed", n_responded=0, n_shards=2, timed_out=True, quorum=None
        )
        trace.root.validate()  # enforces start-order nesting
        keys = [(s.start_s, s.attrs["shard"]) for s in trace.root.children]
        assert keys == sorted(keys)


class TestTracers:
    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        assert isinstance(NULL_TRACER, Tracer)
        # The protocol methods are no-ops, not NotImplemented.
        NULL_TRACER.on_run_start({})
        NULL_TRACER.on_trace(_completed_trace())
        NULL_TRACER.on_timeline({}, [])

    def test_recording_tracer_buckets_per_run(self):
        tracer = RecordingTracer()
        assert tracer.enabled is True
        tracer.on_run_start({"policy": "a"})
        tracer.on_trace(_completed_trace(trace_id=0))
        tracer.on_run_start({"policy": "b"})
        tracer.on_trace(_completed_trace(trace_id=1))
        tracer.on_timeline({}, [{"t_s": 0.0}])
        assert [run.meta["policy"] for run in tracer.runs] == ["a", "b"]
        assert [len(run.traces) for run in tracer.runs] == [1, 1]
        assert tracer.runs[1].timeline == [{"t_s": 0.0}]
        assert [t.trace_id for t in tracer.traces] == [0, 1]
        tracer.clear()
        assert tracer.runs == [] and tracer.traces == []

    def test_recording_tracer_creates_default_bucket(self):
        tracer = RecordingTracer()
        tracer.on_trace(_completed_trace())
        assert len(tracer.runs) == 1
        assert tracer.runs[0].meta == {}


class TestRegistry:
    def test_counter_monotone(self):
        counter = Counter("events")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        with pytest.raises(ConfigurationError, match="decrease"):
            counter.inc(-1)

    def test_counter_is_idempotent_per_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_gauge_duplicate_rejected(self):
        registry = MetricsRegistry()
        registry.gauge("depth", lambda: 1.0)
        with pytest.raises(ConfigurationError, match="already"):
            registry.gauge("depth", lambda: 2.0)

    def test_cross_type_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError, match="another instrument"):
            registry.gauge("x", lambda: 0.0)
        with pytest.raises(ConfigurationError, match="another instrument"):
            registry.histogram("x", bounds=(1.0,))

    def test_histogram_bounds_validated(self):
        with pytest.raises(ConfigurationError, match="sorted"):
            Histogram("h", bounds=())
        with pytest.raises(ConfigurationError, match="sorted"):
            Histogram("h", bounds=(2.0, 1.0))

    def test_histogram_bucketing(self):
        histogram = Histogram("degree", bounds=(1, 2, 4))
        for value in (1, 1, 2, 3, 4, 9):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["n"] == 6
        assert summary["buckets"] == {"1.0": 2, "2.0": 1, "4.0": 2, "+inf": 1}
        assert summary["mean"] == pytest.approx(20 / 6)
        assert summary["min"] == 1 and summary["max"] == 9

    def test_sample_reads_gauges_and_counters(self):
        registry = MetricsRegistry()
        state = {"depth": 5.0}
        registry.gauge("depth", lambda: state["depth"])
        registry.counter("done").inc(2)
        assert registry.sample() == {"depth": 5.0, "done": 2}
        state["depth"] = 7.0
        assert registry.sample()["depth"] == 7.0

    def test_snapshot_includes_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["histograms"]["h"]["n"] == 1


class TestTimelineSampler:
    def test_ticks_at_fixed_interval(self):
        simulator = Simulator()
        registry = MetricsRegistry()
        registry.gauge("now", lambda: simulator.now)
        sampler = TimelineSampler(simulator, registry, interval_s=1.0, until_s=3.0)
        sampler.install()
        simulator.run()
        assert [row["t_s"] for row in sampler.rows] == [0.0, 1.0, 2.0, 3.0]
        assert [row["now"] for row in sampler.rows] == [0.0, 1.0, 2.0, 3.0]

    def test_on_tick_hook_runs_every_tick(self):
        simulator = Simulator()
        ticks = []
        sampler = TimelineSampler(
            simulator, MetricsRegistry(), interval_s=0.5, until_s=1.0,
            on_tick=lambda: ticks.append(simulator.now),
        )
        sampler.install()
        simulator.run()
        assert ticks == [0.0, 0.5, 1.0]

    def test_double_install_rejected(self):
        sampler = TimelineSampler(Simulator(), MetricsRegistry(), 1.0, 2.0)
        sampler.install()
        with pytest.raises(ConfigurationError, match="installed"):
            sampler.install()

    def test_interval_validated(self):
        with pytest.raises(Exception):
            TimelineSampler(Simulator(), MetricsRegistry(), 0.0, 2.0)

    def test_run_observer_defaults_to_recording_tracer(self):
        observer = RunObserver()
        assert isinstance(observer.tracer, RecordingTracer)


class TestExport:
    def test_trace_jsonl_round_trip(self, tmp_path):
        traces = [
            _completed_trace(trace_id=0, server_id="shard0"),
            QueryTraceBuilder(1, 2, 0.0).shed(0.1, "admission"),
        ]
        path = export_traces_jsonl(traces, tmp_path / "t.jsonl")
        loaded = load_jsonl(path)
        assert len(loaded) == 2
        assert loaded[0]["trace_id"] == 0
        assert loaded[0]["server_id"] == "shard0"
        assert loaded[0]["outcome"] == "completed"
        root = loaded[0]["root"]
        assert root["name"] == QUERY
        assert [c["name"] for c in root["children"]] == [QUEUE, EXEC]
        assert loaded[1]["outcome"] == "shed:admission"
        assert "server_id" not in loaded[1]

    def test_span_jsonable_omits_empty_fields(self):
        payload = span_to_jsonable(Span("bare", 0.0, 1.0))
        assert payload == {"name": "bare", "start_s": 0.0, "end_s": 1.0}

    def test_jsonable_matches_validated_tree(self):
        trace = _completed_trace()
        payload = trace_to_jsonable(trace)
        # The payload is pure JSON types.
        json.dumps(payload)
        grant = [
            e for e in payload["root"]["events"] if e["name"] == EVENT_DEGREE_GRANT
        ]
        assert grant[0]["attrs"]["granted"] == 2

    def test_timeline_jsonl_round_trip(self, tmp_path):
        rows = [{"t_s": 0.0, "queue_depth": 1}, {"t_s": 1.0, "queue_depth": 3}]
        path = export_timeline_jsonl(rows, tmp_path / "tl.jsonl")
        assert load_jsonl(path) == rows

    def test_config_hash_stable_and_discriminating(self):
        a = {"rate": 100.0, "duration": 4.0}
        assert config_hash(a) == config_hash(dict(a))
        assert config_hash(a) != config_hash({"rate": 101.0, "duration": 4.0})
        assert len(config_hash(a)) == 16
        int(config_hash(a), 16)  # hex

    def test_manifest_has_provenance_and_no_timestamp(self, tmp_path):
        manifest = run_manifest(
            seed=3, scale="small", config={"x": 1},
            experiments=["e05"], extra={"traced": True},
        )
        assert manifest["seed"] == 3
        assert manifest["scale"] == "small"
        assert manifest["experiments"] == ["e05"]
        assert manifest["traced"] is True
        assert manifest["config_hash"] == config_hash({"x": 1})
        assert isinstance(manifest["git_rev"], str) and manifest["git_rev"]
        # Byte-identical manifests for identical runs: no wall-clock.
        assert not any("time" in key or "date" in key for key in manifest)
        first = write_manifest(manifest, tmp_path / "a.json").read_bytes()
        second = write_manifest(manifest, tmp_path / "b.json").read_bytes()
        assert first == second

    def test_git_revision_fallback(self, tmp_path):
        assert git_revision(tmp_path) == "unknown"


class TestRender:
    def test_waterfall_shows_span_tree(self):
        text = render_waterfall(_completed_trace(server_id="s0"))
        assert "completed" in text
        assert QUEUE in text and EXEC in text
        assert "server=s0" in text
        assert EVENT_DEGREE_GRANT in text

    def test_waterfall_width_validated(self):
        with pytest.raises(ConfigurationError, match="width"):
            render_waterfall(_completed_trace(), width=5)

    def test_timeline_needs_two_rows(self):
        assert "fewer than two" in render_timeline([{"t_s": 0.0}])

    def test_timeline_rejects_unknown_fields(self):
        rows = [{"t_s": 0.0, "x": 1.0}, {"t_s": 1.0, "x": 2.0}]
        with pytest.raises(ConfigurationError, match="present"):
            render_timeline(rows, fields=("missing",))
        assert "timeline" in render_timeline(rows, fields=("x",))

    def test_summarize_traces(self):
        traces = [
            _completed_trace(arrival=0.0, start=0.5, end=2.0),
            QueryTraceBuilder(1, 1, 0.0).shed(0.1, "deadline"),
            QueryTraceBuilder(2, 2, 0.0).shed(0.2, "deadline"),
        ]
        summary = summarize_traces(traces)
        assert summary["n_traces"] == 3
        assert summary["n_completed"] == 1
        assert summary["shed_by_reason"] == {"deadline": 2}
        assert summary["mean_queue_delay_s"] == pytest.approx(0.5)
        assert summary["mean_service_s"] == pytest.approx(1.5)
        assert summary["mean_latency_s"] == pytest.approx(2.0)

    def test_trace_report_combines_summary_and_waterfalls(self):
        traces = [
            _completed_trace(arrival=0.0, start=0.2, end=1.0, trace_id=0),
            _completed_trace(arrival=0.0, start=0.1, end=0.5, trace_id=1),
            _completed_trace(arrival=0.0, start=0.3, end=2.0, trace_id=2),
        ]
        rows = [{"t_s": float(i), "queue_depth": float(i)} for i in range(3)]
        report = render_trace_report(traces, rows)
        assert "3 traces: 3 completed" in report
        assert "span-derived means" in report
        # Slowest query is rendered first.
        assert report.index("trace 2") < report.index("trace 1")

"""Tests for the named workload mixes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.mixes import MIXES, get_mix
from repro.workloads.queries import QueryGenerator


class TestMixes:
    def test_all_mixes_valid_configs(self):
        for name, mix in MIXES.items():
            generator = QueryGenerator(get_mix(name, vocab_size=2_000, seed=1))
            queries = generator.sample_many(50)
            assert all(1 <= q.n_terms <= mix.max_terms for q in queries)

    def test_get_mix_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            get_mix("bogus")

    def test_get_mix_retargets_vocab_and_seed(self):
        mix = get_mix("standard", vocab_size=123, seed=9)
        assert mix.vocab_size == 123
        assert mix.seed == 9

    def test_navigational_shorter_queries_than_informational(self):
        nav = QueryGenerator(get_mix("navigational", vocab_size=5_000, seed=2))
        info = QueryGenerator(get_mix("informational", vocab_size=5_000, seed=2))
        nav_terms = np.mean([q.n_terms for q in nav.sample_many(800)])
        info_terms = np.mean([q.n_terms for q in info.sample_many(800)])
        assert nav_terms < info_terms

    def test_navigational_more_head_skewed(self):
        nav = QueryGenerator(get_mix("navigational", vocab_size=10_000, seed=3))
        stress = QueryGenerator(get_mix("stress", vocab_size=10_000, seed=3))
        nav_head = np.mean(
            [t < 50 for q in nav.sample_many(500) for t in q.term_ids]
        )
        stress_head = np.mean(
            [t < 50 for q in stress.sample_many(500) for t in q.term_ids]
        )
        assert nav_head > stress_head

    def test_mix_does_not_mutate_registry(self):
        before = MIXES["standard"].vocab_size
        get_mix("standard", vocab_size=1)
        assert MIXES["standard"].vocab_size == before

"""Tests for tools/reprolint: every rule, suppression, reporters, CLI.

Fixture files live in ``tests/fixtures/reprolint`` (excluded from real
lint runs by the default excludes). Each violating line carries an
``# EXPECT:RXXX`` marker; tests assert the linter reports *exactly* the
marked (line, rule) multiset — exact counts and exact line numbers.
Path-scoped rules are exercised by copying fixtures into ``sim/`` (in
scope) and ``harness/``/``engine/`` (exempt) directories.
"""

from __future__ import annotations

import json
import re
import shutil
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from tools.reprolint import all_rules, lint_paths, lint_source
from tools.reprolint.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from tools.reprolint.cli import main as reprolint_main
from tools.reprolint.core import Suppressions
from tools.reprolint.reporter import render_json, render_sarif, render_text

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "reprolint"

_EXPECT = re.compile(r"EXPECT:(R\d{3})")


def expected_findings(fixture: Path) -> Counter:
    """(filename, line, rule) -> count multiset from EXPECT markers.

    ``fixture`` may be a single file or a directory tree (whole-program
    rule fixtures span several modules).
    """
    files = sorted(fixture.rglob("*.py")) if fixture.is_dir() else [fixture]
    expectations: Counter = Counter()
    for path in files:
        for lineno, text in enumerate(path.read_text().splitlines(), start=1):
            for rule_id in _EXPECT.findall(text):
                expectations[(path.name, lineno, rule_id)] += 1
    return expectations


def actual_findings(result) -> Counter:
    return Counter(
        (Path(f.path).name, f.line, f.rule_id) for f in result.findings
    )


def lint_fixture(tmp_path: Path, fixture_name: str, rule_id: str, subdir: str = "sim"):
    """Copy a fixture (file or tree) under ``<tmp>/<subdir>/`` and lint
    it with one rule."""
    target_dir = tmp_path / subdir
    source = FIXTURES / fixture_name
    if source.is_dir():
        shutil.copytree(source, target_dir / fixture_name)
        return lint_paths([str(target_dir / fixture_name)], select=[rule_id])
    target_dir.mkdir(parents=True, exist_ok=True)
    target = target_dir / fixture_name
    shutil.copy(source, target)
    return lint_paths([str(target)], select=[rule_id])


RULE_FIXTURES = {
    "R001": "r001_global_rng.py",
    "R002": "r002_adhoc_derivation.py",
    "R003": "r003_wall_clock.py",
    "R004": "r004_float_equality.py",
    "R005": "r005_mutable_defaults.py",
    "R006": "r006_config_fields.py",
    "R007": "r007_swallowed_exceptions.py",
    "R008": "r008_annotations.py",
    "R009": "r009_units.py",
    "R010": "r010_stream_collision.py",
    "R011": "r011_config_typed.py",
    "R012": "r012_thread_safety.py",
    "R013": "r013_experiments",
    "R014": "r014_layering",
    "R015": "r015_async.py",
    "R016": "r016_hotpath",
    "R017": "r017_purity",
    "R018": "r018_taint",
    "R019": "r019_deadlines",
}


class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_exact_findings_and_lines(self, tmp_path, rule_id):
        fixture_name = RULE_FIXTURES[rule_id]
        result = lint_fixture(tmp_path, fixture_name, rule_id)
        expected = expected_findings(FIXTURES / fixture_name)
        assert expected, f"fixture {fixture_name} has no EXPECT markers"
        assert actual_findings(result) == expected

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_suppression_comment_works(self, tmp_path, rule_id):
        # Every fixture contains at least one deliberately-suppressed
        # violation; stripping the suppressions must surface MORE
        # findings than the annotated run.
        fixture_name = RULE_FIXTURES[rule_id]
        annotated = lint_fixture(tmp_path / "with", fixture_name, rule_id)
        stripped_root = tmp_path / "without" / "sim"
        source_fixture = FIXTURES / fixture_name
        files = (
            sorted(source_fixture.rglob("*.py"))
            if source_fixture.is_dir()
            else [source_fixture]
        )
        saw_suppression = False
        for path in files:
            source = path.read_text()
            saw_suppression = saw_suppression or "reprolint: disable=" in source
            relative = (
                path.relative_to(source_fixture.parent)
                if source_fixture.is_dir()
                else Path(path.name)
            )
            target = stripped_root / relative
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(
                re.sub(r"# reprolint: disable=\S+.*$", "", source, flags=re.M)
            )
        assert saw_suppression, f"{fixture_name} exercises no suppressions"
        if source_fixture.is_dir():
            # Carry non-Python fixture files (layers.toml maps) along —
            # without them the layer-driven rules go silent.
            for extra in source_fixture.rglob("*"):
                if extra.is_file() and extra.suffix != ".py":
                    target = stripped_root / extra.relative_to(
                        source_fixture.parent
                    )
                    target.parent.mkdir(parents=True, exist_ok=True)
                    shutil.copy(extra, target)
        without = lint_paths([str(stripped_root)], select=[rule_id])
        assert len(without.findings) > len(annotated.findings)


class TestPathScoping:
    def test_wall_clock_exempt_in_harness(self, tmp_path):
        result = lint_fixture(
            tmp_path, "r003_wall_clock.py", "R003", subdir="harness"
        )
        assert result.findings == []

    def test_wall_clock_exempt_in_cli(self):
        source = "import time\n\n\ndef f() -> float:\n    return time.time()\n"
        assert lint_source(source, "src/repro/cli.py", select=["R003"]) == []

    def test_annotations_not_required_in_engine(self, tmp_path):
        result = lint_fixture(
            tmp_path, "r008_annotations.py", "R008", subdir="engine"
        )
        assert result.findings == []

    def test_rng_module_itself_exempt_from_r001(self):
        source = "import numpy as np\n\n\ndef make() -> object:\n    return np.random.default_rng()\n"
        assert lint_source(source, "src/repro/util/rng.py", select=["R001"]) == []
        assert lint_source(source, "src/other/mod.py", select=["R001"]) != []


class TestSuppressionParsing:
    def test_line_and_file_directives(self):
        source = (
            "# reprolint: disable-file=R006\n"
            "x = 1  # reprolint: disable=R001, R002 -- justified\n"
        )
        sup = Suppressions.from_source(source)
        assert sup.is_suppressed("R006", 99)
        assert sup.is_suppressed("r001", 2)
        assert sup.is_suppressed("R002", 2)
        assert not sup.is_suppressed("R001", 1)
        assert not sup.is_suppressed("R003", 2)

    def test_disable_all(self):
        sup = Suppressions.from_source("y = 2  # reprolint: disable=all\n")
        assert sup.is_suppressed("R007", 1)


class TestRealTreeGate:
    def test_src_is_clean(self):
        result = lint_paths([str(REPO_ROOT / "src")])
        assert result.all_findings == []

    def test_reintroducing_cluster_rng_derivation_fails(self, tmp_path):
        # Acceptance check: putting the old ad-hoc derivation back into
        # sim/cluster.py must fail with R002 at the edited line.
        cluster = (REPO_ROOT / "src/repro/sim/cluster.py").read_text()
        good = 'arrival_rng = streams.stream("arrivals")'
        assert good in cluster
        bad = "arrival_rng = np.random.default_rng(rng.integers(2**63))"
        mutated = cluster.replace(good, bad)
        target_dir = tmp_path / "sim"
        target_dir.mkdir()
        target = target_dir / "cluster.py"
        target.write_text(mutated)
        result = lint_paths([str(target)], select=["R002"])
        assert len(result.findings) == 1
        finding = result.findings[0]
        bad_line = 1 + mutated[: mutated.index(bad)].count("\n")
        assert finding.rule_id == "R002"
        assert finding.line == bad_line

    def test_wall_clock_in_server_fails(self, tmp_path):
        server = (REPO_ROOT / "src/repro/sim/server.py").read_text()
        marker = "        self.metrics.on_arrival()"
        assert marker in server
        mutated = server.replace(
            marker, "        import time\n        _t0 = time.time()\n" + marker
        )
        target_dir = tmp_path / "sim"
        target_dir.mkdir()
        target = target_dir / "server.py"
        target.write_text(mutated)
        result = lint_paths([str(target)], select=["R003"])
        assert [f.rule_id for f in result.findings] == ["R003"]
        # time.time() sits on the line directly above the marker.
        marker_line = 1 + mutated[: mutated.index(marker)].count("\n")
        assert result.findings[0].line == marker_line - 1

    # -- R014-R017 mutation regressions on copies of the real kernel ----

    _KERNEL_MAP = (
        "[layers]\n"
        'kernel = ["core"]\n'
        "\n"
        "[clock]\n"
        'kernel_layers = ["kernel"]\n'
        'forbidden_modules = ["time", "asyncio", "datetime", "sched"]\n'
        'clock_classes = ["ClockProtocol", "SchedulerProtocol", '
        '"VirtualClock", "WallClock", "SystemState"]\n'
        "\n"
        "[purity]\n"
        'layers = ["kernel"]\n'
    )

    def _kernel_copy(self, root: Path, source: str) -> Path:
        """Stage a scheduling-kernel copy under a miniature layer map."""
        root.mkdir(parents=True, exist_ok=True)
        (root / "layers.toml").write_text(self._KERNEL_MAP)
        target_dir = root / "core"
        target_dir.mkdir()
        (target_dir / "scheduling.py").write_text(source)
        return target_dir

    def test_wall_clock_read_in_kernel_fails(self, tmp_path):
        scheduling = (REPO_ROOT / "src/repro/core/scheduling.py").read_text()
        clean_dir = self._kernel_copy(tmp_path / "clean", scheduling)
        assert lint_paths([str(clean_dir)], select=["R014"]).findings == []
        anchor = "from repro.policies.base import SystemState"
        marker = "    wait = now - arrival"
        assert anchor in scheduling and marker in scheduling
        mutated = scheduling.replace(anchor, "import time\n" + anchor)
        mutated = mutated.replace(marker, "    wait = sim.now - arrival")
        bad_dir = self._kernel_copy(tmp_path / "bad", mutated)
        result = lint_paths([str(bad_dir)], select=["R014"])
        assert [f.rule_id for f in result.findings] == ["R014", "R014"]
        import_line = 1 + mutated[: mutated.index("import time\n")].count("\n")
        read_line = 1 + mutated[: mutated.index("sim.now")].count("\n")
        assert sorted(f.line for f in result.findings) == sorted(
            [import_line, read_line]
        )

    def test_print_in_kernel_policy_fails(self, tmp_path):
        scheduling = (REPO_ROOT / "src/repro/core/scheduling.py").read_text()
        clean_dir = self._kernel_copy(tmp_path / "clean", scheduling)
        assert lint_paths([str(clean_dir)], select=["R017"]).findings == []
        marker = "    cap = min(requested, free_cores)"
        assert marker in scheduling
        injected = '    print("granting", requested)\n'
        mutated = scheduling.replace(marker, injected + marker)
        bad_dir = self._kernel_copy(tmp_path / "bad", mutated)
        result = lint_paths([str(bad_dir)], select=["R017"])
        assert [f.rule_id for f in result.findings] == ["R017"]
        bad_line = 1 + mutated[: mutated.index(injected)].count("\n")
        assert result.findings[0].line == bad_line

    def test_blocking_sleep_in_async_def_fails(self, tmp_path):
        online = (REPO_ROOT / "src/repro/policies/online.py").read_text()
        target_dir = tmp_path / "policies"
        target_dir.mkdir()
        (target_dir / "online.py").write_text(online)
        assert lint_paths([str(target_dir)], select=["R015"]).findings == []
        marker = "    def _tick(self) -> None:"
        assert marker in online
        injected = "        time.sleep(0.005)"
        mutated = online.replace(
            marker, "    async def _tick(self) -> None:\n" + injected
        )
        (target_dir / "online.py").write_text(mutated)
        result = lint_paths([str(target_dir)], select=["R015"])
        assert [f.rule_id for f in result.findings] == ["R015"]
        bad_line = 1 + mutated[: mutated.index(injected)].count("\n")
        assert result.findings[0].line == bad_line

    def test_append_loop_in_plan_fails(self, tmp_path):
        plan = (REPO_ROOT / "src/repro/engine/plan.py").read_text()
        (tmp_path / "layers.toml").write_text('[hotpath]\ndirs = ["engine"]\n')
        target_dir = tmp_path / "engine"
        target_dir.mkdir()
        (target_dir / "plan.py").write_text(plan)
        assert lint_paths([str(target_dir)], select=["R016"]).findings == []
        marker = (
            "            relevance += "
            "np.maximum.accumulate(per_chunk[::-1])[::-1]"
        )
        assert marker in plan
        bad = "relevance = np.append(relevance, _value)"
        mutated = plan.replace(
            marker,
            "            for _value in per_chunk:\n                " + bad,
        )
        (target_dir / "plan.py").write_text(mutated)
        result = lint_paths([str(target_dir)], select=["R016"])
        assert [f.rule_id for f in result.findings] == ["R016"]
        bad_line = 1 + mutated[: mutated.index(bad)].count("\n")
        assert result.findings[0].line == bad_line


class TestReporters:
    def test_text_format(self, tmp_path):
        result = lint_fixture(tmp_path, "r005_mutable_defaults.py", "R005")
        text = render_text(result)
        assert "R005" in text
        first = result.findings[0]
        assert f"{first.path}:{first.line}:{first.col}: R005" in text

    def test_text_clean_summary(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text('"""Nothing to report."""\n')
        result = lint_paths([str(clean)])
        assert "clean: 0 findings" in render_text(result)

    def test_json_format(self, tmp_path):
        result = lint_fixture(tmp_path, "r007_swallowed_exceptions.py", "R007")
        payload = json.loads(render_json(result))
        assert payload["counts_by_rule"] == {"R007": 2}
        assert {f["rule"] for f in payload["findings"]} == {"R007"}
        assert all(
            {"path", "line", "col", "rule", "message"} <= set(f)
            for f in payload["findings"]
        )

    def test_parse_error_reported(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        result = lint_paths([str(bad)])
        assert not result.ok
        assert result.all_findings[0].rule_id == "E999"

    def test_json_schema_shape(self, tmp_path):
        # The JSON report is consumed by CI tooling; its top-level shape
        # is a stable contract (schema_version bumps on change).
        result = lint_fixture(tmp_path, "r007_swallowed_exceptions.py", "R007")
        payload = json.loads(render_json(result))
        assert set(payload) == {
            "schema_version",
            "files_scanned",
            "rules",
            "counts_by_rule",
            "findings",
            "suppressed_by_rule",
            "suppressed_total",
            "baselined",
        }
        assert payload["schema_version"] == 2
        assert payload["files_scanned"] == 1
        for rule_id, meta in payload["rules"].items():
            assert re.fullmatch(r"R\d{3}", rule_id)
            assert set(meta) == {"summary", "rationale", "project_rule"}
            assert isinstance(meta["project_rule"], bool)
        assert payload["suppressed_total"] == sum(
            payload["suppressed_by_rule"].values()
        )
        assert payload["baselined"] == []

    def test_json_reports_suppressions(self, tmp_path):
        result = lint_fixture(tmp_path, "r005_mutable_defaults.py", "R005")
        payload = json.loads(render_json(result))
        assert payload["suppressed_by_rule"].get("R005", 0) >= 1

    def test_sarif_shape(self, tmp_path):
        result = lint_fixture(tmp_path, "r004_float_equality.py", "R004")
        sarif = json.loads(render_sarif(result))
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "reprolint"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        for res in run["results"]:
            assert rule_ids[res["ruleIndex"]] == res["ruleId"]
            location = res["locations"][0]["physicalLocation"]
            assert location["region"]["startLine"] >= 1
        assert len(run["results"]) == len(result.findings)


class TestSuppressionEdges:
    def test_fixture_exact(self, tmp_path):
        target_dir = tmp_path / "sim"
        target_dir.mkdir()
        target = target_dir / "suppression_edges.py"
        shutil.copy(FIXTURES / "suppression_edges.py", target)
        result = lint_paths([str(target)], select=["R001", "R004", "R005"])
        expected = expected_findings(FIXTURES / "suppression_edges.py")
        assert actual_findings(result) == expected

    def test_fixture_suppressed_set(self, tmp_path):
        # disable=all and the comma list silence R001 (lines 19-20); the
        # file-wide directive silences R004 everywhere (lines 33, 37);
        # the per-line disable on `combined` silences its R005 (line 36).
        target_dir = tmp_path / "sim"
        target_dir.mkdir()
        target = target_dir / "suppression_edges.py"
        shutil.copy(FIXTURES / "suppression_edges.py", target)
        result = lint_paths([str(target)], select=["R001", "R004", "R005"])
        suppressed = sorted((f.line, f.rule_id) for f in result.suppressed)
        assert suppressed == [
            (19, "R001"),
            (20, "R001"),
            (33, "R004"),
            (36, "R005"),
            (37, "R004"),
        ]

    def test_malformed_directives_suppress_nothing(self):
        for text in (
            "x = 1  # reprolint: disable R001\n",  # missing '='
            "x = 1  # reprolint: disab1e=R001\n",  # typo
            "x = 1  # reprolint: disable=\n",  # empty list
        ):
            sup = Suppressions.from_source(text)
            assert not sup.is_suppressed("R001", 1), text

    def test_disable_file_all(self):
        sup = Suppressions.from_source("# reprolint: disable-file=all\nx = 1\n")
        assert sup.is_suppressed("R001", 2)
        assert sup.is_suppressed("R013", 2)


class TestBaseline:
    def _lint_wall_clock(self, tmp_path, body):
        target_dir = tmp_path / "sim"
        target_dir.mkdir(exist_ok=True)
        target = target_dir / "legacy.py"
        target.write_text(body)
        return target, lint_paths([str(target)], select=["R003"])

    BODY = "import time\n\n\ndef f() -> float:\n    return time.time()\n"

    def test_round_trip(self, tmp_path):
        target, result = self._lint_wall_clock(tmp_path, self.BODY)
        assert len(result.findings) == 1
        baseline_file = tmp_path / "baseline.json"
        write_baseline(str(baseline_file), result.findings)
        entries = load_baseline(str(baseline_file))
        new, baselined, stale = apply_baseline(result.findings, entries)
        assert new == []
        assert len(baselined) == 1
        assert stale == []

    def test_line_moves_stay_baselined(self, tmp_path):
        # Fingerprints are (path, rule, message) — inserting lines above
        # a baselined finding must not resurrect it.
        target, result = self._lint_wall_clock(tmp_path, self.BODY)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(str(baseline_file), result.findings)
        shifted = "CONSTANT = 1\nOTHER = 2\n" + self.BODY
        target.write_text(shifted)
        moved = lint_paths([str(target)], select=["R003"])
        assert moved.findings[0].line != result.findings[0].line
        new, baselined, stale = apply_baseline(
            moved.findings, load_baseline(str(baseline_file))
        )
        assert new == []
        assert len(baselined) == 1

    def test_stale_entries_surface_without_failing(self, tmp_path):
        target, result = self._lint_wall_clock(tmp_path, self.BODY)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(str(baseline_file), result.findings)
        target.write_text('"""Fixed."""\n')
        clean = lint_paths([str(target)], select=["R003"])
        new, baselined, stale = apply_baseline(
            clean.findings, load_baseline(str(baseline_file))
        )
        assert new == [] and baselined == []
        assert len(stale) == 1
        assert stale[0] == fingerprint(result.findings[0])

    def test_load_rejects_malformed(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("not json")
        with pytest.raises(ValueError):
            load_baseline(str(bad))
        bad.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError):
            load_baseline(str(bad))
        bad.write_text('{"version": 1, "entries": [{"path": "x"}]}')
        with pytest.raises(ValueError):
            load_baseline(str(bad))

    def test_cli_staged_adoption_flow(self, tmp_path, capsys):
        target, result = self._lint_wall_clock(tmp_path, self.BODY)
        baseline_file = tmp_path / "baseline.json"
        # Gate fails on the legacy finding...
        assert reprolint_main([str(target), "--select", "R003"]) == 1
        # ...snapshotting it lets the gate pass...
        assert (
            reprolint_main(
                [str(target), "--select", "R003",
                 "--write-baseline", str(baseline_file)]
            )
            == 0
        )
        assert (
            reprolint_main(
                [str(target), "--select", "R003",
                 "--baseline", str(baseline_file)]
            )
            == 0
        )
        capsys.readouterr()
        # ...but a NEW finding still fails against the same baseline.
        target.write_text(self.BODY + "\n\ndef g() -> float:\n    return time.monotonic()\n")
        assert (
            reprolint_main(
                [str(target), "--select", "R003",
                 "--baseline", str(baseline_file)]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "monotonic" in out

    def test_cli_malformed_baseline_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text("{broken")
        target_dir = tmp_path / "sim"
        target_dir.mkdir()
        (target_dir / "ok.py").write_text('"""Clean."""\n')
        assert (
            reprolint_main([str(target_dir), "--baseline", str(bad)]) == 2
        )
        assert "reprolint: error" in capsys.readouterr().err


class TestCli:
    def test_exit_zero_flag(self, tmp_path, capsys):
        target_dir = tmp_path / "sim"
        target_dir.mkdir()
        shutil.copy(
            FIXTURES / "r003_wall_clock.py", target_dir / "r003_wall_clock.py"
        )
        assert reprolint_main([str(target_dir)]) == 1
        assert reprolint_main([str(target_dir), "--exit-zero"]) == 0
        captured = capsys.readouterr()
        assert "R003" in captured.out

    def test_unknown_select_rule_is_usage_error_naming_the_id(self, capsys):
        assert reprolint_main(["--select", "R999", str(FIXTURES.parent)]) == 2
        err = capsys.readouterr().err
        assert "unknown rule" in err
        assert "R999" in err

    def test_unknown_ignore_rule_is_usage_error_naming_the_id(self, capsys):
        assert reprolint_main(["--ignore", "R042", str(FIXTURES.parent)]) == 2
        err = capsys.readouterr().err
        assert "unknown rule" in err
        assert "R042" in err

    def test_list_rules(self, capsys):
        assert reprolint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_FIXTURES:
            assert rule_id in out

    def test_sarif_format_flag(self, tmp_path, capsys):
        target_dir = tmp_path / "sim"
        target_dir.mkdir()
        shutil.copy(
            FIXTURES / "r004_float_equality.py", target_dir / "r004.py"
        )
        assert (
            reprolint_main([str(target_dir), "--format", "sarif", "--exit-zero"])
            == 0
        )
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        assert any(r["ruleId"] == "R004" for r in sarif["runs"][0]["results"])

    def test_output_file_flag(self, tmp_path, capsys):
        target_dir = tmp_path / "sim"
        target_dir.mkdir()
        (target_dir / "clean.py").write_text('"""Clean."""\n')
        out_file = tmp_path / "report.json"
        assert (
            reprolint_main(
                [str(target_dir), "--format", "json", "--output", str(out_file)]
            )
            == 0
        )
        assert capsys.readouterr().out == ""
        payload = json.loads(out_file.read_text())
        assert payload["findings"] == []

    def test_findings_exit_1_internal_error_exit_3(
        self, tmp_path, capsys, monkeypatch
    ):
        target_dir = tmp_path / "sim"
        target_dir.mkdir()
        shutil.copy(FIXTURES / "r003_wall_clock.py", target_dir / "legacy.py")
        # Findings in the tree: exit 1 ("fix your code").
        assert reprolint_main([str(target_dir), "--select", "R003"]) == 1
        capsys.readouterr()
        # A rule crashing on valid input: exit 3 ("fix the linter").
        def boom(self, ctx):
            raise RuntimeError("rule exploded")

        monkeypatch.setattr(all_rules()["R003"], "check", boom)
        assert reprolint_main([str(target_dir), "--select", "R003"]) == 3
        err = capsys.readouterr().err
        assert "internal error" in err
        assert "rule exploded" in err

    def test_exit_zero_does_not_mask_internal_error(
        self, tmp_path, capsys, monkeypatch
    ):
        target_dir = tmp_path / "sim"
        target_dir.mkdir()
        (target_dir / "mod.py").write_text('"""Anything."""\nX = 1\n')

        def boom(self, ctx):
            raise RuntimeError("still broken")

        monkeypatch.setattr(all_rules()["R003"], "check", boom)
        assert (
            reprolint_main(
                [str(target_dir), "--select", "R003", "--exit-zero"]
            )
            == 3
        )
        assert "internal error" in capsys.readouterr().err

    def test_module_entry_point_on_real_src(self):
        # The gate the CI job runs: must exit 0 on the current tree.
        proc = subprocess.run(
            [
                sys.executable, "-m", "tools.reprolint",
                "src", "tests", "tools",
                "--baseline", ".reprolint-baseline.json",
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_registry_complete(self):
        assert sorted(all_rules()) == sorted(RULE_FIXTURES)

"""Tests for tools/reprolint: every rule, suppression, reporters, CLI.

Fixture files live in ``tests/fixtures/reprolint`` (excluded from real
lint runs by the default excludes). Each violating line carries an
``# EXPECT:RXXX`` marker; tests assert the linter reports *exactly* the
marked (line, rule) multiset — exact counts and exact line numbers.
Path-scoped rules are exercised by copying fixtures into ``sim/`` (in
scope) and ``harness/``/``engine/`` (exempt) directories.
"""

from __future__ import annotations

import json
import re
import shutil
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from tools.reprolint import all_rules, lint_paths, lint_source
from tools.reprolint.cli import main as reprolint_main
from tools.reprolint.core import Suppressions
from tools.reprolint.reporter import render_json, render_text

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "reprolint"

_EXPECT = re.compile(r"EXPECT:(R\d{3})")


def expected_findings(fixture: Path) -> Counter:
    """(line, rule) -> count multiset from the EXPECT markers."""
    expectations: Counter = Counter()
    for lineno, text in enumerate(fixture.read_text().splitlines(), start=1):
        for rule_id in _EXPECT.findall(text):
            expectations[(lineno, rule_id)] += 1
    return expectations


def lint_fixture(tmp_path: Path, fixture_name: str, rule_id: str, subdir: str = "sim"):
    """Copy a fixture under ``<tmp>/<subdir>/`` and lint it with one rule."""
    target_dir = tmp_path / subdir
    target_dir.mkdir(parents=True, exist_ok=True)
    target = target_dir / fixture_name
    shutil.copy(FIXTURES / fixture_name, target)
    return lint_paths([str(target)], select=[rule_id])


RULE_FIXTURES = {
    "R001": "r001_global_rng.py",
    "R002": "r002_adhoc_derivation.py",
    "R003": "r003_wall_clock.py",
    "R004": "r004_float_equality.py",
    "R005": "r005_mutable_defaults.py",
    "R006": "r006_config_fields.py",
    "R007": "r007_swallowed_exceptions.py",
    "R008": "r008_annotations.py",
}


class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_exact_findings_and_lines(self, tmp_path, rule_id):
        fixture_name = RULE_FIXTURES[rule_id]
        result = lint_fixture(tmp_path, fixture_name, rule_id)
        actual = Counter((f.line, f.rule_id) for f in result.findings)
        expected = expected_findings(FIXTURES / fixture_name)
        assert expected, f"fixture {fixture_name} has no EXPECT markers"
        assert actual == expected

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_suppression_comment_works(self, tmp_path, rule_id):
        # Every fixture contains at least one deliberately-suppressed
        # violation; stripping the suppressions must surface MORE
        # findings than the annotated run.
        fixture_name = RULE_FIXTURES[rule_id]
        source = (FIXTURES / fixture_name).read_text()
        assert "reprolint: disable=" in source
        stripped = re.sub(r"# reprolint: disable=\S+.*$", "", source, flags=re.M)
        path = f"sim/{fixture_name}"
        with_suppressions = lint_source(source, path, select=[rule_id])
        without = lint_source(stripped, path, select=[rule_id])
        assert len(without) > len(with_suppressions)


class TestPathScoping:
    def test_wall_clock_exempt_in_harness(self, tmp_path):
        result = lint_fixture(
            tmp_path, "r003_wall_clock.py", "R003", subdir="harness"
        )
        assert result.findings == []

    def test_wall_clock_exempt_in_cli(self):
        source = "import time\n\n\ndef f() -> float:\n    return time.time()\n"
        assert lint_source(source, "src/repro/cli.py", select=["R003"]) == []

    def test_annotations_not_required_in_engine(self, tmp_path):
        result = lint_fixture(
            tmp_path, "r008_annotations.py", "R008", subdir="engine"
        )
        assert result.findings == []

    def test_rng_module_itself_exempt_from_r001(self):
        source = "import numpy as np\n\n\ndef make() -> object:\n    return np.random.default_rng()\n"
        assert lint_source(source, "src/repro/util/rng.py", select=["R001"]) == []
        assert lint_source(source, "src/other/mod.py", select=["R001"]) != []


class TestSuppressionParsing:
    def test_line_and_file_directives(self):
        source = (
            "# reprolint: disable-file=R006\n"
            "x = 1  # reprolint: disable=R001, R002 -- justified\n"
        )
        sup = Suppressions.from_source(source)
        assert sup.is_suppressed("R006", 99)
        assert sup.is_suppressed("r001", 2)
        assert sup.is_suppressed("R002", 2)
        assert not sup.is_suppressed("R001", 1)
        assert not sup.is_suppressed("R003", 2)

    def test_disable_all(self):
        sup = Suppressions.from_source("y = 2  # reprolint: disable=all\n")
        assert sup.is_suppressed("R007", 1)


class TestRealTreeGate:
    def test_src_is_clean(self):
        result = lint_paths([str(REPO_ROOT / "src")])
        assert result.all_findings == []

    def test_reintroducing_cluster_rng_derivation_fails(self, tmp_path):
        # Acceptance check: putting the old ad-hoc derivation back into
        # sim/cluster.py must fail with R002 at the edited line.
        cluster = (REPO_ROOT / "src/repro/sim/cluster.py").read_text()
        good = 'arrival_rng = streams.stream("arrivals")'
        assert good in cluster
        bad = "arrival_rng = np.random.default_rng(rng.integers(2**63))"
        mutated = cluster.replace(good, bad)
        target_dir = tmp_path / "sim"
        target_dir.mkdir()
        target = target_dir / "cluster.py"
        target.write_text(mutated)
        result = lint_paths([str(target)], select=["R002"])
        assert len(result.findings) == 1
        finding = result.findings[0]
        bad_line = 1 + mutated[: mutated.index(bad)].count("\n")
        assert finding.rule_id == "R002"
        assert finding.line == bad_line

    def test_wall_clock_in_server_fails(self, tmp_path):
        server = (REPO_ROOT / "src/repro/sim/server.py").read_text()
        marker = "        self.metrics.on_arrival()"
        assert marker in server
        mutated = server.replace(
            marker, "        import time\n        _t0 = time.time()\n" + marker
        )
        target_dir = tmp_path / "sim"
        target_dir.mkdir()
        target = target_dir / "server.py"
        target.write_text(mutated)
        result = lint_paths([str(target)], select=["R003"])
        assert [f.rule_id for f in result.findings] == ["R003"]
        # time.time() sits on the line directly above the marker.
        marker_line = 1 + mutated[: mutated.index(marker)].count("\n")
        assert result.findings[0].line == marker_line - 1


class TestReporters:
    def test_text_format(self, tmp_path):
        result = lint_fixture(tmp_path, "r005_mutable_defaults.py", "R005")
        text = render_text(result)
        assert "R005" in text
        first = result.findings[0]
        assert f"{first.path}:{first.line}:{first.col}: R005" in text

    def test_text_clean_summary(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text('"""Nothing to report."""\n')
        result = lint_paths([str(clean)])
        assert "clean: 0 findings" in render_text(result)

    def test_json_format(self, tmp_path):
        result = lint_fixture(tmp_path, "r007_swallowed_exceptions.py", "R007")
        payload = json.loads(render_json(result))
        assert payload["counts_by_rule"] == {"R007": 2}
        assert {f["rule"] for f in payload["findings"]} == {"R007"}
        assert all(
            {"path", "line", "col", "rule", "message"} <= set(f)
            for f in payload["findings"]
        )

    def test_parse_error_reported(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        result = lint_paths([str(bad)])
        assert not result.ok
        assert result.all_findings[0].rule_id == "E999"


class TestCli:
    def test_exit_zero_flag(self, tmp_path, capsys):
        target_dir = tmp_path / "sim"
        target_dir.mkdir()
        shutil.copy(
            FIXTURES / "r003_wall_clock.py", target_dir / "r003_wall_clock.py"
        )
        assert reprolint_main([str(target_dir)]) == 1
        assert reprolint_main([str(target_dir), "--exit-zero"]) == 0
        captured = capsys.readouterr()
        assert "R003" in captured.out

    def test_unknown_rule_is_usage_error(self, capsys):
        assert reprolint_main(["--select", "R999", str(FIXTURES.parent)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert reprolint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_FIXTURES:
            assert rule_id in out

    def test_module_entry_point_on_real_src(self):
        # The gate the CI job runs: must exit 0 on the current tree.
        proc = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", "src"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_registry_complete(self):
        assert sorted(all_rules()) == sorted(RULE_FIXTURES)

"""Property-based round-trip tests for serialization and tables."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.serde import dumps, to_jsonable
from repro.util.tables import Table

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=30),
)

json_like = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=25,
)


@given(obj=json_like)
@settings(max_examples=150, deadline=None)
def test_serde_roundtrips_through_json(obj):
    text = dumps(obj)
    parsed = json.loads(text)
    # to_jsonable normalizes tuples/sets to lists; applying it twice must
    # be a fixed point, and the parsed form must equal the normal form.
    normal = to_jsonable(obj)
    assert to_jsonable(normal) == normal
    assert parsed == normal


@given(
    columns=st.lists(
        st.text(
            alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
            min_size=1,
            max_size=8,
        ),
        min_size=1,
        max_size=5,
        unique=True,
    ),
    n_rows=st.integers(0, 8),
    data=st.data(),
)
@settings(max_examples=100, deadline=None)
def test_table_renders_all_cells(columns, n_rows, data):
    table = Table(columns)
    rows = []
    for _ in range(n_rows):
        row = data.draw(
            st.lists(
                st.one_of(st.integers(-1000, 1000),
                          st.floats(0.001, 1000, allow_nan=False)),
                min_size=len(columns),
                max_size=len(columns),
            )
        )
        rows.append(row)
        table.add_row(row)
    rendered = table.render()
    lines = rendered.splitlines()
    # header + separator + one line per row
    assert len(lines) == 2 + n_rows
    # All lines align to the same width as the header.
    header_width = len(lines[0])
    assert all(len(line) <= header_width + 2 for line in lines)
    assert table.n_rows == n_rows
    # Records view preserves shape.
    records = table.as_records()
    assert len(records) == n_rows
    for record in records:
        assert set(record) == set(columns)

"""Tests for the inverted index: chunks, postings, lexicon, builder."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.index.builder import IndexConfig, build_index
from repro.index.chunks import ChunkMap
from repro.index.lexicon import Lexicon
from repro.index.postings import PostingList
from repro.ranking.bm25 import BM25Params, bm25_score_document


class TestChunkMap:
    def test_partition_covers_all_docs(self):
        cm = ChunkMap(n_docs=1000, chunk_size=64)
        assert cm.bounds[0] == 0 and cm.bounds[-1] == 1000
        assert cm.chunk_lengths().sum() == 1000

    def test_last_chunk_may_be_short(self):
        cm = ChunkMap(n_docs=100, chunk_size=30)
        assert cm.n_chunks == 4
        assert cm.chunk_range(3) == (90, 100)

    def test_chunk_of_doc(self):
        cm = ChunkMap(n_docs=100, chunk_size=30)
        assert cm.chunk_of_doc(0) == 0
        assert cm.chunk_of_doc(29) == 0
        assert cm.chunk_of_doc(30) == 1
        assert cm.chunk_of_doc(99) == 3

    def test_iteration(self):
        cm = ChunkMap(n_docs=10, chunk_size=4)
        assert list(cm) == [(0, 4), (4, 8), (8, 10)]

    def test_exact_division(self):
        cm = ChunkMap(n_docs=12, chunk_size=4)
        assert cm.n_chunks == 3

    def test_out_of_range_rejected(self):
        cm = ChunkMap(n_docs=10, chunk_size=4)
        with pytest.raises(Exception):
            cm.chunk_range(3)
        with pytest.raises(Exception):
            cm.chunk_of_doc(10)


def _make_plist(doc_ids, impacts, chunk_map, term_id=0):
    doc_ids = np.asarray(doc_ids, dtype=np.int64)
    return PostingList(
        term_id=term_id,
        doc_ids=doc_ids,
        freqs=np.ones_like(doc_ids),
        impacts=np.asarray(impacts, dtype=np.float64),
        chunk_map=chunk_map,
    )


class TestPostingList:
    def test_chunk_slices_partition_postings(self):
        cm = ChunkMap(n_docs=100, chunk_size=10)
        plist = _make_plist([1, 5, 11, 55, 99], [1.0, 2.0, 3.0, 4.0, 5.0], cm)
        total = 0
        for chunk_id in range(cm.n_chunks):
            ids, impacts = plist.chunk_slice(chunk_id)
            total += ids.shape[0]
            start, end = cm.chunk_range(chunk_id)
            assert np.all((ids >= start) & (ids < end))
        assert total == 5

    def test_chunk_upper_bound(self):
        cm = ChunkMap(n_docs=30, chunk_size=10)
        plist = _make_plist([0, 5, 15, 25], [1.0, 3.0, 2.0, 9.0], cm)
        assert plist.chunk_upper_bound(0) == 3.0
        assert plist.chunk_upper_bound(1) == 2.0
        assert plist.chunk_upper_bound(2) == 9.0

    def test_upper_bound_absent_chunk_is_zero(self):
        cm = ChunkMap(n_docs=30, chunk_size=10)
        plist = _make_plist([0], [1.0], cm)
        assert plist.chunk_upper_bound(2) == 0.0

    def test_suffix_upper_bounds(self):
        cm = ChunkMap(n_docs=30, chunk_size=10)
        plist = _make_plist([0, 15, 25], [5.0, 2.0, 3.0], cm)
        bounds = plist.suffix_upper_bounds(cm.n_chunks)
        assert bounds.tolist() == [5.0, 3.0, 3.0, 0.0]

    def test_contains_and_impact_of(self):
        cm = ChunkMap(n_docs=20, chunk_size=10)
        plist = _make_plist([3, 12], [1.5, 2.5], cm)
        assert plist.contains(12) and not plist.contains(4)
        assert plist.impact_of(3) == 1.5
        assert plist.impact_of(4) == 0.0

    def test_non_ascending_doc_ids_rejected(self):
        cm = ChunkMap(n_docs=20, chunk_size=10)
        with pytest.raises(IndexError_):
            _make_plist([5, 5], [1.0, 1.0], cm)

    def test_empty_posting_list(self):
        cm = ChunkMap(n_docs=20, chunk_size=10)
        plist = _make_plist([], [], cm)
        assert plist.doc_frequency == 0
        assert plist.max_impact == 0.0
        assert plist.suffix_upper_bounds(cm.n_chunks).tolist() == [0.0, 0.0, 0.0]


class TestLexicon:
    def test_add_and_lookup(self):
        cm = ChunkMap(n_docs=10, chunk_size=5)
        lex = Lexicon(vocab_size=4)
        lex.add(_make_plist([1, 2], [1.0, 2.0], cm, term_id=2))
        assert 2 in lex and 1 not in lex
        assert lex.doc_frequency(2) == 2
        assert lex.doc_frequency(1) == 0
        assert lex.max_impact(2) == 2.0

    def test_duplicate_rejected(self):
        cm = ChunkMap(n_docs=10, chunk_size=5)
        lex = Lexicon(vocab_size=4)
        lex.add(_make_plist([1], [1.0], cm, term_id=0))
        with pytest.raises(IndexError_):
            lex.add(_make_plist([2], [1.0], cm, term_id=0))

    def test_missing_term_raises(self):
        with pytest.raises(IndexError_):
            Lexicon(vocab_size=4).postings(0)

    def test_posting_lists_skips_absent(self):
        cm = ChunkMap(n_docs=10, chunk_size=5)
        lex = Lexicon(vocab_size=4)
        lex.add(_make_plist([1], [1.0], cm, term_id=3))
        assert len(lex.posting_lists([0, 3])) == 1


class TestBuilder:
    def test_index_covers_corpus(self, tiny_corpus, tiny_index):
        assert tiny_index.n_docs == tiny_corpus.n_docs
        assert tiny_index.n_postings == tiny_corpus.n_postings

    def test_df_matches_corpus(self, tiny_corpus, tiny_index):
        corpus_df = tiny_corpus.document_frequencies()
        index_df = tiny_index.lexicon.document_frequencies()
        assert np.array_equal(corpus_df, index_df)

    def test_posting_lists_sorted(self, tiny_index):
        for term_id in list(tiny_index.lexicon)[:50]:
            plist = tiny_index.lexicon.postings(term_id)
            assert np.all(np.diff(plist.doc_ids) > 0)

    def test_impacts_match_reference_bm25(self, tiny_corpus, tiny_index):
        """Precomputed impacts equal the reference scorer's idf*tf."""
        params = tiny_index.bm25_params
        df = tiny_corpus.document_frequencies()
        for doc_id in (0, 100, 500):
            doc = tiny_corpus.document(doc_id)
            terms = doc.term_ids[:5]
            expected = bm25_score_document(
                term_freqs=[doc.term_frequency(int(t)) for t in terms],
                doc_freqs=[df[int(t)] for t in terms],
                doc_length=doc.length,
                n_docs=tiny_corpus.n_docs,
                avg_doc_length=tiny_corpus.average_doc_length,
                params=params,
            )
            total = sum(
                tiny_index.lexicon.postings(int(t)).impact_of(doc_id) for t in terms
            )
            assert total == pytest.approx(expected, rel=1e-9)

    def test_memory_footprint_positive(self, tiny_index):
        assert tiny_index.memory_footprint_bytes() > 0

    def test_chunk_size_config(self, tiny_corpus):
        index = build_index(tiny_corpus, IndexConfig(chunk_size=200))
        assert index.chunk_map.chunk_size == 200

    def test_custom_bm25_params_propagate(self, tiny_corpus):
        index = build_index(
            tiny_corpus, IndexConfig(chunk_size=100, bm25=BM25Params(k1=2.0, b=0.5))
        )
        assert index.bm25_params.k1 == 2.0

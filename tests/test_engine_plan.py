"""Tests for query planning: candidate chunks, bounds, chunk scoring."""

import numpy as np
import pytest

from repro.engine.plan import QueryPlan
from repro.engine.query import MatchMode, Query
from repro.errors import ExecutionError
from repro.ranking.composite import ScoreWeights


def _plan(index, terms, mode=MatchMode.ALL, k=10):
    return QueryPlan(Query.of(terms, k=k, mode=mode), index)


def _common_terms(index, n=2):
    """Terms with the longest posting lists (guaranteed co-occurrence)."""
    df = index.lexicon.document_frequencies()
    return np.argsort(df)[::-1][:n].tolist()


class TestCandidateChunks:
    def test_all_mode_candidates_are_chunk_intersection(self, tiny_index):
        terms = _common_terms(tiny_index, 2)
        plan = _plan(tiny_index, terms)
        expected = np.intersect1d(
            tiny_index.lexicon.postings(terms[0]).chunk_ids,
            tiny_index.lexicon.postings(terms[1]).chunk_ids,
        )
        assert np.array_equal(plan.candidate_chunks, expected)

    def test_any_mode_candidates_are_chunk_union(self, tiny_index):
        terms = _common_terms(tiny_index, 2)
        plan = _plan(tiny_index, terms, mode=MatchMode.ANY)
        expected = np.union1d(
            tiny_index.lexicon.postings(terms[0]).chunk_ids,
            tiny_index.lexicon.postings(terms[1]).chunk_ids,
        )
        assert np.array_equal(plan.candidate_chunks, expected)

    def test_missing_term_all_mode_gives_empty_plan(self, tiny_index):
        missing = tiny_index.lexicon.vocab_size + 7  # never indexed
        plan = _plan(tiny_index, [_common_terms(tiny_index, 1)[0], missing])
        assert plan.is_empty

    def test_missing_term_any_mode_keeps_others(self, tiny_index):
        missing = tiny_index.lexicon.vocab_size + 7
        common = _common_terms(tiny_index, 1)[0]
        plan = _plan(tiny_index, [common, missing], mode=MatchMode.ANY)
        assert not plan.is_empty

    def test_chunk_ids_are_sorted_unique(self, tiny_index):
        # The assume_unique=True fast path in _candidate_chunks is only
        # valid because PostingList.chunk_ids is sorted-unique by
        # construction; pin that invariant where the optimization relies
        # on it.
        for term in _common_terms(tiny_index, 5):
            chunk_ids = tiny_index.lexicon.postings(term).chunk_ids
            assert np.array_equal(chunk_ids, np.unique(chunk_ids))

    def test_candidates_match_unoptimized_reference(self, tiny_index):
        # assume_unique / single-pass union must compute the same sets as
        # the naive sorted intersections/unions.
        terms = _common_terms(tiny_index, 3)
        plists = [tiny_index.lexicon.postings(t) for t in terms]
        all_plan = _plan(tiny_index, terms)
        expected_all = plists[0].chunk_ids
        for plist in plists[1:]:
            expected_all = np.intersect1d(expected_all, plist.chunk_ids)
        assert np.array_equal(all_plan.candidate_chunks, expected_all)
        any_plan = _plan(tiny_index, terms, mode=MatchMode.ANY)
        expected_any = plists[0].chunk_ids
        for plist in plists[1:]:
            expected_any = np.union1d(expected_any, plist.chunk_ids)
        assert np.array_equal(any_plan.candidate_chunks, expected_any)


class TestBounds:
    def test_bounds_non_increasing(self, tiny_index):
        plan = _plan(tiny_index, _common_terms(tiny_index, 2))
        bounds = plan.bounds_from
        assert np.all(np.diff(bounds) <= 1e-12)

    def test_final_bound_is_minus_inf(self, tiny_index):
        plan = _plan(tiny_index, _common_terms(tiny_index, 1))
        assert plan.bounds_from[-1] == -np.inf

    def test_bound_dominates_actual_chunk_scores(self, tiny_index):
        """Soundness: no document in chunk i..end scores above bounds_from[i]."""
        plan = _plan(tiny_index, _common_terms(tiny_index, 2))
        for position in range(plan.n_candidate_chunks):
            outcome = plan.score_chunk(position)
            if outcome.n_matched:
                assert outcome.scores.max() <= plan.bounds_from[position] + 1e-9

    def test_bound_position_validation(self, tiny_index):
        plan = _plan(tiny_index, _common_terms(tiny_index, 1))
        with pytest.raises(ExecutionError):
            plan.bound_from_position(-1)
        with pytest.raises(ExecutionError):
            plan.bound_from_position(plan.n_candidate_chunks + 1)


class TestChunkScoring:
    def test_conjunctive_matches_contain_all_terms(self, tiny_corpus, tiny_index):
        terms = _common_terms(tiny_index, 2)
        plan = _plan(tiny_index, terms)
        outcome = plan.score_chunk(0)
        for doc_id in outcome.doc_ids[:20]:
            doc = tiny_corpus.document(int(doc_id))
            for t in terms:
                assert doc.term_frequency(int(t)) > 0

    def test_conjunctive_scores_match_manual_sum(self, tiny_index):
        terms = _common_terms(tiny_index, 2)
        plan = _plan(tiny_index, terms)
        outcome = plan.score_chunk(0)
        weights = ScoreWeights()
        for doc_id, score in zip(outcome.doc_ids[:10], outcome.scores[:10]):
            expected = weights.relevance_weight * sum(
                tiny_index.lexicon.postings(t).impact_of(int(doc_id)) for t in terms
            ) + weights.static_weight * tiny_index.static_ranks[int(doc_id)]
            assert score == pytest.approx(expected, rel=1e-9)

    def test_disjunctive_superset_of_conjunctive(self, tiny_index):
        terms = _common_terms(tiny_index, 2)
        all_plan = _plan(tiny_index, terms)
        any_plan = _plan(tiny_index, terms, mode=MatchMode.ANY)
        chunk_id = int(all_plan.candidate_chunks[0])
        any_position = int(np.searchsorted(any_plan.candidate_chunks, chunk_id))
        all_docs = set(all_plan.score_chunk(0).doc_ids.tolist())
        any_docs = set(any_plan.score_chunk(any_position).doc_ids.tolist())
        assert all_docs <= any_docs

    def test_postings_scanned_counts_slices(self, tiny_index):
        terms = _common_terms(tiny_index, 2)
        plan = _plan(tiny_index, terms)
        chunk_id = int(plan.candidate_chunks[0])
        expected = sum(
            tiny_index.lexicon.postings(t).chunk_slice(chunk_id)[0].shape[0]
            for t in terms
        )
        assert plan.score_chunk(0).postings_scanned == expected

    def test_doc_ids_ascending(self, tiny_index):
        plan = _plan(tiny_index, _common_terms(tiny_index, 2))
        outcome = plan.score_chunk(0)
        assert np.all(np.diff(outcome.doc_ids) > 0)

    def test_out_of_range_position_rejected(self, tiny_index):
        plan = _plan(tiny_index, _common_terms(tiny_index, 1))
        with pytest.raises(ExecutionError):
            plan.score_chunk(plan.n_candidate_chunks)

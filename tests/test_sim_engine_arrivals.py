"""Tests for the simulator core and arrival processes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.arrivals import (
    DeterministicArrivals,
    MMPP2Arrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.sim.engine import Simulator


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(2.0, lambda: fired.append("b"))
        sim.schedule_at(1.0, lambda: fired.append("a"))
        sim.schedule_at(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(1.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1, 2]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_run_until_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(10.0, lambda: fired.append(2))
        sim.run(until_s=5.0)
        assert fired == [1]
        assert sim.now == 5.0  # reprolint: disable=R004 -- clock is assigned exactly to `until`, not accumulated
        assert sim.pending_events == 1

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                sim.schedule(1.0, lambda: chain(depth + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert fired == [0, 1, 2, 3]

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda: sim.schedule_at(1.0, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_backwards_horizon_rejected(self):
        sim = Simulator()
        sim.schedule_at(2.0, lambda: None)
        sim.run(until_s=3.0)
        with pytest.raises(SimulationError):
            sim.run(until_s=1.0)

    def test_processed_count(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule_at(float(t), lambda: None)
        sim.run()
        assert sim.processed_events == 5

    # Horizon-boundary semantics (see Simulator.run docstring) --------

    def test_event_at_exact_horizon_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append("edge"))
        sim.run(until_s=5.0)
        assert fired == ["edge"]
        assert sim.now == 5.0  # reprolint: disable=R004 -- clock is assigned exactly to `until`, not accumulated

    def test_same_instant_chain_at_horizon_fires(self):
        # An event at the horizon that schedules another event at the
        # same instant must see that event fire in the same run() call.
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda: sim.schedule_at(5.0, lambda: fired.append("chained")))
        sim.run(until_s=5.0)
        assert fired == ["chained"]

    def test_run_until_now_is_noop(self):
        sim = Simulator()
        sim.schedule_at(3.0, lambda: None)
        sim.run(until_s=3.0)
        processed = sim.processed_events
        sim.run(until_s=3.0)  # same-horizon re-run: legal, does nothing
        assert sim.processed_events == processed

    def test_schedule_at_horizon_after_run_is_legal(self):
        # run() leaves `now` exactly on the horizon, so scheduling at
        # that instant afterwards must be accepted, not "in the past".
        sim = Simulator()
        fired = []
        sim.run(until_s=2.0)
        sim.schedule_at(2.0, lambda: fired.append("late"))
        sim.run()
        assert fired == ["late"]

    def test_non_finite_horizon_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            sim = Simulator()
            sim.schedule_at(1.0, lambda: None)
            with pytest.raises(SimulationError, match="finite"):
                sim.run(until_s=bad)
            # The failed run must not have touched the clock or queue.
            assert sim.now == 0.0  # reprolint: disable=R004 -- clock must be untouched, exact zero
            assert sim.pending_events == 1

    def test_non_finite_event_time_rejected(self):
        sim = Simulator()
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(SimulationError, match="finite"):
                sim.schedule_at(bad, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule(float("nan"), lambda: None)


class TestPoissonArrivals:
    def test_mean_rate(self, rng):
        process = PoissonArrivals(rate=100.0, rng=rng)
        gaps = [process.next_interarrival() for _ in range(20_000)]
        assert np.mean(gaps) == pytest.approx(0.01, rel=0.05)

    def test_gaps_positive(self, rng):
        process = PoissonArrivals(rate=10.0, rng=rng)
        assert all(process.next_interarrival() > 0 for _ in range(100))

    def test_bad_rate_rejected(self, rng):
        with pytest.raises(Exception):
            PoissonArrivals(rate=0.0, rng=rng)


class TestDeterministicArrivals:
    def test_constant_spacing(self):
        process = DeterministicArrivals(rate=4.0)
        assert [process.next_interarrival() for _ in range(3)] == [0.25] * 3


class TestMMPP2:
    def test_mean_rate_property(self, rng):
        process = MMPP2Arrivals(10.0, 100.0, 0.9, 0.1, rng)
        expected = (10.0 * 0.9 + 100.0 * 0.1) / 1.0
        assert process.mean_rate == pytest.approx(expected)

    def test_with_mean_rate_hits_target(self, rng):
        process = MMPP2Arrivals.with_mean_rate(
            mean_rate=200.0, burst_ratio=5.0, mean_dwell_s=0.05, rng=rng
        )
        assert process.mean_rate == pytest.approx(200.0, rel=1e-9)
        gaps = [process.next_interarrival() for _ in range(60_000)]
        assert 1.0 / np.mean(gaps) == pytest.approx(200.0, rel=0.1)

    def test_burstier_than_poisson(self, rng):
        """Index of dispersion of counts should exceed 1 for MMPP."""
        process = MMPP2Arrivals.with_mean_rate(
            mean_rate=1000.0, burst_ratio=8.0, mean_dwell_s=0.1,
            rng=np.random.default_rng(0),
        )
        times = np.cumsum([process.next_interarrival() for _ in range(50_000)])
        window = 0.1
        counts = np.bincount((times / window).astype(int))
        dispersion = counts.var() / counts.mean()
        assert dispersion > 1.5

    def test_degenerate_ratio_one_is_poisson_like(self, rng):
        process = MMPP2Arrivals.with_mean_rate(
            mean_rate=500.0, burst_ratio=1.0, mean_dwell_s=0.05, rng=rng
        )
        assert process.rate_low == pytest.approx(process.rate_high)

    def test_invalid_params_rejected(self, rng):
        with pytest.raises(Exception):
            MMPP2Arrivals(100.0, 10.0, 1.0, 1.0, rng)  # high < low
        with pytest.raises(Exception):
            MMPP2Arrivals.with_mean_rate(100.0, 0.5, 0.1, rng)  # ratio < 1


class TestTraceArrivals:
    def test_replays_gaps(self):
        trace = TraceArrivals([0.5, 1.0, 3.0])
        assert trace.next_interarrival() == 0.5
        assert trace.next_interarrival() == 0.5
        assert trace.next_interarrival() == 2.0
        assert trace.next_interarrival() == float("inf")

    def test_reset(self):
        trace = TraceArrivals([1.0, 2.0])
        trace.next_interarrival()
        trace.reset()
        assert trace.next_interarrival() == 1.0

    def test_unsorted_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceArrivals([2.0, 1.0])

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceArrivals([-1.0, 1.0])


class TestMMPP2RegimeBoundary:
    """Regression: a candidate landing exactly on the dwell boundary
    belongs to the *new* regime (half-open [switch, next_switch)
    windows) and must be re-sampled at the new rate, not accepted at
    the old one."""

    class _ScriptedRng:
        """Stands in for a Generator; replays scripted exponentials and
        records the scale of every draw."""

        def __init__(self, values):
            self._values = list(values)
            self.scales = []

        def exponential(self, scale):
            self.scales.append(scale)
            return self._values.pop(0)

    def test_boundary_candidate_resampled_in_new_regime(self):
        # Draw order: initial low dwell (5.0), low-rate candidate
        # exactly on the boundary (5.0), high dwell after the switch
        # (10.0), high-rate candidate (0.25).
        rng = self._ScriptedRng([5.0, 5.0, 10.0, 0.25])
        process = MMPP2Arrivals(
            rate_low=2.0, rate_high=8.0,
            mean_dwell_low_s=1.0, mean_dwell_high_s=3.0,
            rng=rng,
        )
        gap = process.next_interarrival()
        # The boundary candidate was NOT accepted at the old rate (which
        # would have returned exactly 5.0): the process switched state
        # and re-sampled, so the arrival lands 0.25 into the high
        # regime.
        assert gap == 5.25
        assert process._in_high
        # The re-sample after the switch was drawn at the HIGH rate and
        # the new dwell at the high-state mean.
        assert rng.scales == [1.0, 1.0 / 2.0, 3.0, 1.0 / 8.0]
        # The accepted gap was debited from the new regime's dwell.
        assert process._dwell_remaining_s == pytest.approx(9.75)

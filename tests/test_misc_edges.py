"""Assorted edge-case tests across modules."""

import numpy as np
import pytest

from repro.engine.query import Query
from repro.errors import ExecutionError, SimulationError
from repro.profiles.measurement import QueryCostTable
from repro.sim.experiment import LoadPointConfig, LoadPointSummary
from repro.sim.oracle import ServiceOracle
from repro.workloads.workbench import WorkbenchConfig


class TestServiceOracleEdges:
    def test_table_without_degree_one_rejected(self):
        from repro.errors import ProfileError

        table = QueryCostTable(
            [Query.of([0])],
            (2,),
            np.ones((1, 1)),
            np.ones((1, 1)),
            np.ones((1, 1), dtype=np.int64),
        )
        # The oracle needs sequential baselines; construction must fail.
        with pytest.raises(ProfileError):
            ServiceOracle(table)

    def test_clamp_rejects_nonpositive(self):
        table = QueryCostTable(
            [Query.of([0])],
            (1,),
            np.ones((1, 1)),
            np.ones((1, 1)),
            np.ones((1, 1), dtype=np.int64),
        )
        with pytest.raises(SimulationError):
            ServiceOracle(table).clamp_degree(0)

    def test_info_without_predictions(self):
        table = QueryCostTable(
            [Query.of([0], query_id=7)],
            (1,),
            np.full((1, 1), 0.5),
            np.full((1, 1), 0.5),
            np.ones((1, 1), dtype=np.int64),
        )
        info = ServiceOracle(table).info(0)
        assert info.predicted_sequential_latency is None
        assert info.true_sequential_latency == pytest.approx(0.5)
        assert info.query_id == 7


class TestLoadPointConfigEdges:
    def test_warmup_must_precede_duration(self):
        with pytest.raises(Exception):
            LoadPointConfig(rate=1.0, duration=5.0, warmup=5.0)

    def test_saturated_heuristic(self):
        base = dict(
            policy="p", rate=100.0, n_cores=4, offered_utilization=0.5,
            observed=10, utilization=0.5, mean_latency=0.1,
            p50_latency=0.1, p95_latency=0.1, p99_latency=0.1,
            mean_queue_delay=0.0, mean_degree=1.0,
        )
        assert LoadPointSummary(throughput=80.0, **base).saturated
        assert not LoadPointSummary(throughput=99.0, **base).saturated


class TestEngineEdges:
    def test_threaded_respects_max_degree(self, small_engine, sample_queries):
        with pytest.raises(ExecutionError):
            small_engine.execute_threaded(
                sample_queries[0], small_engine.config.max_degree + 1
            )

    def test_empty_plan_trace_has_no_positions(self, small_engine, small_workbench):
        missing = small_workbench.corpus.vocab_size + 9
        trace = small_engine.trace(Query.of([missing]))
        assert trace.n_positions == 0
        result = small_engine.execute_trace(trace, 4)
        assert result.n_results == 0
        assert result.chunks_evaluated == 0

    def test_parallel_empty_plan_has_overhead_only(self, small_engine,
                                                   small_workbench):
        missing = small_workbench.corpus.vocab_size + 9
        trace = small_engine.trace(Query.of([missing]))
        result = small_engine.execute_trace(trace, 4)
        cost_model = small_engine.config.cost_model
        expected = (
            cost_model.query_fixed_cost
            + cost_model.fork_time(4)
            + cost_model.join_time(4)
        )
        assert result.latency == pytest.approx(expected)


class TestWorkbenchConfigEdges:
    def test_presets_differ(self):
        assert WorkbenchConfig.small() != WorkbenchConfig.reference()

    def test_hashable_for_caching(self):
        assert {WorkbenchConfig.small(), WorkbenchConfig.small()} == {
            WorkbenchConfig.small()
        }

    def test_seed_propagates(self):
        config = WorkbenchConfig.small(seed=42)
        assert config.seed == 42
        assert config.corpus.seed == 42

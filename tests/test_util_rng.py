"""Tests for repro.util.rng: deterministic stream derivation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.util.rng import RngFactory, derive_seed, make_rng, spawn_streams


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_label_sensitivity(self):
        assert derive_seed(42, "arrivals") != derive_seed(42, "service")

    def test_root_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_label_path_is_not_concatenation(self):
        # ("ab",) and ("a", "b") must map to different seeds.
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")

    def test_integer_labels_allowed(self):
        assert derive_seed(0, 1, 2) == derive_seed(0, "1", "2")

    def test_result_fits_in_64_bits(self):
        assert 0 <= derive_seed(7, "x") < 2**64


class TestMakeRng:
    def test_int_seed_reproducible(self):
        a, b = make_rng(5), make_rng(5)
        assert a.random() == b.random()

    def test_string_seed_reproducible(self):
        a, b = make_rng("hello"), make_rng("hello")
        assert a.random() == b.random()

    def test_different_string_seeds_differ(self):
        assert make_rng("a").random() != make_rng("b").random()

    def test_none_rejected_loudly(self):
        # An unseeded generator would make an experiment silently
        # nondeterministic; make_rng must refuse rather than oblige.
        with pytest.raises(ConfigurationError, match="explicit seed"):
            make_rng(None)  # reprolint: disable=R001 -- asserting the refusal itself

    def test_spawn_streams_none_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            spawn_streams(None, ["arrivals"])

    def test_bad_seed_type_rejected(self):
        with pytest.raises(ConfigurationError):
            make_rng(3.14)


class TestRngFactory:
    def test_streams_are_independent(self):
        factory = RngFactory(9)
        a = factory.stream("one").random(4)
        b = factory.stream("two").random(4)
        assert not np.allclose(a, b)

    def test_same_name_same_stream(self):
        factory = RngFactory(9)
        assert np.allclose(
            factory.stream("x").random(4),  # reprolint: disable=R010 -- this test asserts the replay property itself
            factory.stream("x").random(4),  # reprolint: disable=R010 -- deliberate same-label replay
        )

    def test_child_factory_differs_from_parent(self):
        factory = RngFactory(9)
        child = factory.child("sub")
        assert child.root_seed != factory.root_seed
        assert child.stream("x").random() != factory.stream("x").random()

    def test_empty_labels_rejected(self):
        with pytest.raises(ConfigurationError):
            RngFactory(0).stream()

    def test_non_int_root_rejected(self):
        with pytest.raises(ConfigurationError):
            RngFactory("nope")

    def test_seed_for_matches_derive_seed(self):
        factory = RngFactory(3)
        assert factory.seed_for("a") == derive_seed(3, "a")


def test_spawn_streams_returns_named_generators():
    streams = spawn_streams(4, ["arrivals", "service"])
    assert set(streams) == {"arrivals", "service"}
    assert all(isinstance(g, np.random.Generator) for g in streams.values())

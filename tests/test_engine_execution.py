"""Execution-level invariants: sequential, parallel, threaded, termination.

These encode DESIGN.md §5: the correctness contract between the three
executors and the termination rules.
"""

import numpy as np
import pytest

from repro.engine.cost import CostModel
from repro.engine.executor import Engine, EngineConfig
from repro.engine.query import Query
from repro.engine.termination import TerminationConfig
from repro.errors import ExecutionError

DEGREES = (2, 3, 4, 8)


@pytest.fixture(scope="module")
def exhaustive_engine(small_workbench):
    """Engine with all early termination disabled (exhaustive scans)."""
    config = EngineConfig(
        termination=TerminationConfig(match_budget=None, use_score_bound=False),
        max_degree=16,
    )
    return Engine(small_workbench.index, config)


@pytest.fixture(scope="module")
def safe_engine(small_workbench):
    """Engine with only the safe score-bound termination."""
    config = EngineConfig(
        termination=TerminationConfig(match_budget=None, use_score_bound=True),
        max_degree=16,
    )
    return Engine(small_workbench.index, config)


@pytest.fixture(scope="module")
def budget_engine(small_workbench):
    """Engine with the production-style match budget."""
    config = EngineConfig(
        termination=TerminationConfig(match_budget=64, use_score_bound=True),
        max_degree=16,
    )
    return Engine(small_workbench.index, config)


class TestSequentialExecution:
    def test_returns_at_most_k(self, budget_engine, sample_queries):
        for query in sample_queries[:20]:
            result = budget_engine.execute(query, 1)
            assert result.n_results <= query.k

    def test_results_sorted_by_score_then_id(self, budget_engine, sample_queries):
        for query in sample_queries[:20]:
            result = budget_engine.execute(query, 1)
            pairs = [(r.score, -r.doc_id) for r in result.results]
            assert pairs == sorted(pairs, reverse=True)

    def test_safe_termination_equals_exhaustive(
        self, safe_engine, exhaustive_engine, sample_queries
    ):
        """The score-bound rule never changes the top-k."""
        for query in sample_queries[:25]:
            safe = safe_engine.execute(query, 1)
            full = exhaustive_engine.execute(query, 1)
            assert safe.doc_ids == full.doc_ids
            assert np.allclose(safe.scores, full.scores)

    def test_safe_termination_saves_work_somewhere(
        self, safe_engine, exhaustive_engine, sample_queries
    ):
        saved = 0
        for query in sample_queries:
            if (
                safe_engine.execute(query, 1).chunks_evaluated
                < exhaustive_engine.execute(query, 1).chunks_evaluated
            ):
                saved += 1
        assert saved > 0, "score-bound termination never fired on 60 queries"

    def test_budget_termination_reduces_work(
        self, budget_engine, exhaustive_engine, sample_queries
    ):
        budget_chunks = sum(
            budget_engine.execute(q, 1).chunks_evaluated for q in sample_queries
        )
        full_chunks = sum(
            exhaustive_engine.execute(q, 1).chunks_evaluated for q in sample_queries
        )
        assert budget_chunks < full_chunks

    def test_cpu_time_equals_latency(self, budget_engine, sample_queries):
        result = budget_engine.execute(sample_queries[0], 1)
        assert result.cpu_time == pytest.approx(result.latency)

    def test_empty_query_result(self, budget_engine, small_workbench):
        missing = small_workbench.corpus.vocab_size + 3  # never indexed
        result = budget_engine.execute(Query.of([missing]), 1)
        assert result.n_results == 0
        assert result.chunks_evaluated == 0


class TestParallelExecution:
    def test_exhaustive_parallel_identical_to_sequential(
        self, exhaustive_engine, sample_queries
    ):
        """With no early termination, every degree returns bit-identical
        results."""
        for query in sample_queries[:15]:
            trace = exhaustive_engine.trace(query)
            sequential = exhaustive_engine.execute_trace(trace, 1)
            for degree in DEGREES:
                parallel = exhaustive_engine.execute_trace(trace, degree)
                assert parallel.doc_ids == sequential.doc_ids
                assert np.allclose(parallel.scores, sequential.scores)

    def test_safe_parallel_identical_to_sequential(self, safe_engine, sample_queries):
        for query in sample_queries[:15]:
            trace = safe_engine.trace(query)
            sequential = safe_engine.execute_trace(trace, 1)
            for degree in DEGREES:
                parallel = safe_engine.execute_trace(trace, degree)
                assert parallel.doc_ids == sequential.doc_ids

    def test_budget_parallel_scores_dominate_sequential(
        self, budget_engine, sample_queries
    ):
        """Approximate termination: parallel evaluates a superset of the
        documents, so its ranked scores are pointwise >= sequential's."""
        for query in sample_queries[:25]:
            trace = budget_engine.trace(query)
            sequential = budget_engine.execute_trace(trace, 1)
            for degree in DEGREES:
                parallel = budget_engine.execute_trace(trace, degree)
                for p_score, s_score in zip(parallel.scores, sequential.scores):
                    assert p_score >= s_score - 1e-12

    def test_parallel_work_at_least_sequential(self, budget_engine, sample_queries):
        for query in sample_queries[:25]:
            trace = budget_engine.trace(query)
            sequential = budget_engine.execute_trace(trace, 1)
            for degree in DEGREES:
                parallel = budget_engine.execute_trace(trace, degree)
                assert parallel.chunks_evaluated >= sequential.chunks_evaluated
                assert parallel.cpu_time >= sequential.cpu_time - 1e-12

    def test_speedup_bounded_by_degree(self, budget_engine, sample_queries):
        for query in sample_queries[:25]:
            trace = budget_engine.trace(query)
            t1 = budget_engine.execute_trace(trace, 1).latency
            for degree in DEGREES:
                tp = budget_engine.execute_trace(trace, degree).latency
                assert t1 / tp <= degree + 1e-9

    def test_deterministic(self, budget_engine, sample_queries):
        query = sample_queries[0]
        a = budget_engine.execute(query, 4)
        b = budget_engine.execute(query, 4)
        assert a.doc_ids == b.doc_ids
        assert a.latency == b.latency  # reprolint: disable=R004 -- bit-identical replay is the property under test
        assert a.cpu_time == b.cpu_time  # reprolint: disable=R004 -- bit-identical replay is the property under test

    def test_worker_busy_reported_per_worker(self, budget_engine, sample_queries):
        result = budget_engine.execute(sample_queries[0], 4)
        assert len(result.worker_busy) == 4

    def test_makespan_at_least_max_worker(self, budget_engine, sample_queries):
        for query in sample_queries[:10]:
            result = budget_engine.execute(query, 4)
            assert result.latency >= max(result.worker_busy) - 1e-12

    def test_invalid_degree_rejected(self, budget_engine, sample_queries):
        with pytest.raises(ExecutionError):
            budget_engine.execute(sample_queries[0], 0)
        with pytest.raises(ExecutionError):
            budget_engine.execute(sample_queries[0], 99)


class TestThreadedExecution:
    def test_exhaustive_threaded_matches_sequential(
        self, exhaustive_engine, sample_queries
    ):
        """Real threads, no termination: results must be identical."""
        for query in sample_queries[:6]:
            sequential = exhaustive_engine.execute(query, 1)
            threaded = exhaustive_engine.execute_threaded(query, 4)
            assert threaded.doc_ids == sequential.doc_ids

    def test_budget_threaded_scores_dominate(self, budget_engine, sample_queries):
        for query in sample_queries[:6]:
            sequential = budget_engine.execute(query, 1)
            threaded = budget_engine.execute_threaded(query, 4)
            for t_score, s_score in zip(threaded.scores, sequential.scores):
                assert t_score >= s_score - 1e-12

    def test_threaded_degree_one(self, budget_engine, sample_queries):
        sequential = budget_engine.execute(sample_queries[0], 1)
        threaded = budget_engine.execute_threaded(sample_queries[0], 1)
        assert threaded.doc_ids == sequential.doc_ids


class TestCostModel:
    def test_fork_join_zero_for_sequential(self):
        cm = CostModel()
        assert cm.fork_time(1) == 0.0
        assert cm.join_time(1) == 0.0
        assert cm.merge_time(1) == 0.0

    def test_fork_scales_with_extra_workers(self):
        cm = CostModel()
        assert cm.fork_time(5) == pytest.approx(4 * cm.fork_cost)

    def test_negative_coefficient_rejected(self):
        with pytest.raises(Exception):
            CostModel(posting_cost=-1.0)

    def test_latency_increases_with_costs(self, small_workbench, sample_queries):
        cheap = Engine(
            small_workbench.index,
            EngineConfig(cost_model=CostModel(posting_cost=1e-9)),
        )
        pricey = Engine(
            small_workbench.index,
            EngineConfig(cost_model=CostModel(posting_cost=1e-6)),
        )
        query = sample_queries[0]
        assert pricey.execute(query, 1).latency > cheap.execute(query, 1).latency

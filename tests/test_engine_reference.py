"""Differential tests: the engine vs the brute-force reference searcher."""

import numpy as np
import pytest

from repro.engine.executor import Engine, EngineConfig
from repro.engine.query import MatchMode, Query
from repro.engine.reference import brute_force_search
from repro.engine.termination import TerminationConfig
from repro.workloads.queries import QueryGenerator, QueryWorkloadConfig


@pytest.fixture(scope="module")
def exhaustive_tiny_engine(tiny_index):
    return Engine(
        tiny_index,
        EngineConfig(
            termination=TerminationConfig(match_budget=None, use_score_bound=False)
        ),
    )


@pytest.fixture(scope="module")
def safe_tiny_engine(tiny_index):
    return Engine(
        tiny_index,
        EngineConfig(
            termination=TerminationConfig(match_budget=None, use_score_bound=True)
        ),
    )


@pytest.fixture(scope="module")
def tiny_queries(tiny_index):
    generator = QueryGenerator(
        QueryWorkloadConfig(vocab_size=tiny_index.lexicon.vocab_size, seed=17)
    )
    return generator.sample_many(40)


class TestEngineMatchesBruteForce:
    def test_exhaustive_engine_equals_reference(
        self, exhaustive_tiny_engine, tiny_index, tiny_queries
    ):
        for query in tiny_queries:
            expected = brute_force_search(tiny_index, query)
            result = exhaustive_tiny_engine.execute(query, 1)
            assert result.doc_ids == [d for d, _ in expected]
            assert np.allclose(result.scores, [s for _, s in expected])

    def test_safe_termination_equals_reference(
        self, safe_tiny_engine, tiny_index, tiny_queries
    ):
        for query in tiny_queries:
            expected = brute_force_search(tiny_index, query)
            result = safe_tiny_engine.execute(query, 1)
            assert result.doc_ids == [d for d, _ in expected]

    def test_parallel_exhaustive_equals_reference(
        self, exhaustive_tiny_engine, tiny_index, tiny_queries
    ):
        for query in tiny_queries[:15]:
            expected = brute_force_search(tiny_index, query)
            result = exhaustive_tiny_engine.execute(query, 4)
            assert result.doc_ids == [d for d, _ in expected]

    def test_chunk_skipping_equals_reference(self, tiny_index, tiny_queries):
        # skip_chunks is a *safe* rule: with no match budget the results
        # must be bit-identical to the brute-force reference.
        engine = Engine(
            tiny_index,
            EngineConfig(
                termination=TerminationConfig(
                    match_budget=None, use_score_bound=True, skip_chunks=True
                )
            ),
        )
        for query in tiny_queries:
            expected = brute_force_search(tiny_index, query)
            result = engine.execute(query, 1)
            assert result.doc_ids == [d for d, _ in expected]
            assert np.allclose(result.scores, [s for _, s in expected])

    def test_batched_executor_equals_reference(
        self, exhaustive_tiny_engine, tiny_index, tiny_queries
    ):
        results = exhaustive_tiny_engine.execute_batch(tiny_queries)
        for query, result in zip(tiny_queries, results):
            expected = brute_force_search(tiny_index, query)
            assert result.doc_ids == [d for d, _ in expected]
            assert np.allclose(result.scores, [s for _, s in expected])

    def test_disjunctive_mode(self, tiny_index, tiny_queries):
        engine = Engine(
            tiny_index,
            EngineConfig(
                termination=TerminationConfig(
                    match_budget=None, use_score_bound=False
                )
            ),
        )
        for base in tiny_queries[:10]:
            query = Query(term_ids=base.term_ids, k=base.k, mode=MatchMode.ANY)
            expected = brute_force_search(tiny_index, query)
            result = engine.execute(query, 1)
            assert result.doc_ids == [d for d, _ in expected]

    def test_budget_results_are_prefix_quality(
        self, tiny_index, tiny_queries
    ):
        """Approximate termination returns docs that are *valid matches*
        with correct scores, even if not the global top-k."""
        engine = Engine(
            tiny_index,
            EngineConfig(termination=TerminationConfig(match_budget=32)),
        )
        for query in tiny_queries[:15]:
            exhaustive = dict(
                brute_force_search(
                    tiny_index, Query(term_ids=query.term_ids, k=10**9,
                                      mode=query.mode)
                )
            )
            result = engine.execute(query, 1)
            for ranked in result.results:
                assert ranked.doc_id in exhaustive
                assert ranked.score == pytest.approx(exhaustive[ranked.doc_id])

    def test_missing_term_conjunctive_empty(self, tiny_index):
        query = Query.of([tiny_index.lexicon.vocab_size + 1, 0])
        assert brute_force_search(tiny_index, query) == []

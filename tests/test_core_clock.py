"""Tests for the clock-agnostic kernel interfaces (repro.core.clock).

The refactor's contract: the scheduling kernel sees time only through
``ClockProtocol``/``SchedulerProtocol``; the simulator satisfies them on
virtual time and ``WallClock`` on wall time, interchangeably.
"""

import pytest

from repro.core.clock import ClockProtocol, SchedulerProtocol, VirtualClock
from repro.errors import SimulationError
from repro.runtime import WallClock
from repro.sim.engine import Simulator


class TestVirtualClock:
    def test_starts_at_zero_and_advances(self):
        clock = VirtualClock()
        assert clock.now == 0.0  # reprolint: disable=R004 -- virtual time is set, not measured; exactness is the contract
        clock.advance_to(1.5)
        assert clock.now == 1.5  # reprolint: disable=R004 -- virtual time is set, not measured; exactness is the contract
        clock.advance_by(0.5)
        assert clock.now == 2.0  # reprolint: disable=R004 -- virtual time is set, not measured; exactness is the contract

    def test_rejects_backwards_advance(self):
        clock = VirtualClock()
        clock.advance_to(1.0)
        with pytest.raises(SimulationError):
            clock.advance_to(0.5)

    def test_rejects_negative_delta(self):
        with pytest.raises(SimulationError):
            VirtualClock().advance_by(-0.1)

    def test_advance_to_same_time_is_a_noop(self):
        clock = VirtualClock()
        clock.advance_to(1.0)
        clock.advance_to(1.0)
        assert clock.now == 1.0  # reprolint: disable=R004 -- virtual time is set, not measured; exactness is the contract


class TestWallClock:
    def test_zeroed_at_construction_and_monotonic(self):
        clock = WallClock()
        first = clock.now
        second = clock.now
        assert first >= 0.0
        assert second >= first


class TestProtocolConformance:
    def test_virtual_clock_is_a_clock(self):
        assert isinstance(VirtualClock(), ClockProtocol)

    def test_wall_clock_is_a_clock(self):
        assert isinstance(WallClock(), ClockProtocol)

    def test_simulator_is_a_scheduler(self):
        # The online controller attaches to any SchedulerProtocol; the
        # virtual-time simulator must satisfy it structurally.
        simulator = Simulator()
        assert isinstance(simulator, SchedulerProtocol)
        assert isinstance(simulator, ClockProtocol)

    def test_simulator_now_is_its_clock(self):
        simulator = Simulator()
        assert simulator.now == simulator.clock.now == 0.0  # reprolint: disable=R004 -- virtual time is set, not measured; exactness is the contract


class TestSimulatorDrivesVirtualClock:
    def test_events_advance_the_clock(self):
        simulator = Simulator()
        seen = []
        simulator.schedule(1.0, lambda: seen.append(simulator.now))
        simulator.schedule(2.5, lambda: seen.append(simulator.now))
        simulator.run(until_s=5.0)
        assert seen == [1.0, 2.5]
        assert simulator.now == 5.0  # reprolint: disable=R004 -- virtual time is set, not measured; exactness is the contract

"""Online-adaptive policy and its feedback controller.

Includes the stability property tests required by the robustness
milestone: bounded oscillation (the scale never leaves its clamps and
never moves more than one bounded step per window) and monotone
response to sustained load steps.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.policies.adaptive import AdaptivePolicy, ThresholdTable
from repro.policies.base import QueryInfo, SystemState
from repro.policies.online import (
    ControlDecision,
    OnlineAdaptivePolicy,
    OnlineControllerConfig,
    OnlineDegreeController,
)
from repro.util.rng import RngFactory

TABLE = ThresholdTable.from_pairs([(2, 8), (4, 4), (8, 2)])


def _state(n_in_system, n_cores=8):
    return SystemState(
        now=0.0,
        n_queued=max(0, n_in_system - 1),
        n_running=0,
        free_cores=n_cores,
        n_cores=n_cores,
    )


# ----------------------------------------------------------------------
# Policy semantics
# ----------------------------------------------------------------------


class TestOnlineAdaptivePolicy:
    def test_scale_one_matches_offline_adaptive(self):
        online = OnlineAdaptivePolicy(TABLE)
        offline = AdaptivePolicy(TABLE)
        info = QueryInfo()
        for n in range(1, 30):
            assert online.choose_degree(_state(n), info) == (
                offline.choose_degree(_state(n), info)
            )

    def test_smaller_scale_never_raises_degree(self):
        info = QueryInfo()
        for scale in (0.75, 0.5, 0.25):
            tightened = OnlineAdaptivePolicy(TABLE)
            tightened.apply_control(scale=scale)
            reference = OnlineAdaptivePolicy(TABLE)
            for n in range(1, 30):
                assert tightened.choose_degree(_state(n), info) <= (
                    reference.choose_degree(_state(n), info)
                )

    def test_degree_cap_clamps(self):
        policy = OnlineAdaptivePolicy(TABLE)
        policy.apply_control(max_degree_cap=2)
        assert policy.choose_degree(_state(1), QueryInfo()) == 2

    def test_apply_control_validates(self):
        policy = OnlineAdaptivePolicy(TABLE)
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ConfigurationError):
                policy.apply_control(scale=bad)
        with pytest.raises(ConfigurationError):
            policy.apply_control(max_degree_cap=0)
        with pytest.raises(ConfigurationError):
            policy.apply_control(max_degree_cap=TABLE.max_degree + 1)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError, match="step"):
            OnlineControllerConfig(target_p99_s=1.0, window_s=1.0, step=1.0)
        with pytest.raises(ConfigurationError, match="max_scale"):
            OnlineControllerConfig(
                target_p99_s=1.0, window_s=1.0, min_scale=1.0, max_scale=0.5
            )
        with pytest.raises(ConfigurationError, match="deadband"):
            OnlineControllerConfig(
                target_p99_s=1.0, window_s=1.0, deadband=1.0
            )
        with pytest.raises(ConfigurationError, match="jitter_fraction"):
            OnlineControllerConfig(
                target_p99_s=1.0, window_s=1.0, jitter_fraction=0.9
            )

    def test_controller_requires_online_policy(self):
        config = OnlineControllerConfig(target_p99_s=1.0, window_s=1.0)
        with pytest.raises(ConfigurationError, match="OnlineAdaptivePolicy"):
            OnlineDegreeController(AdaptivePolicy(TABLE), config)

    def test_jitter_requires_streams(self):
        config = OnlineControllerConfig(
            target_p99_s=1.0, window_s=1.0, jitter_fraction=0.1
        )
        with pytest.raises(ConfigurationError, match="RngFactory"):
            OnlineDegreeController(OnlineAdaptivePolicy(TABLE), config)
        OnlineDegreeController(
            OnlineAdaptivePolicy(TABLE), config, streams=RngFactory(0)
        )


# ----------------------------------------------------------------------
# Controller harness: drive ticks from synthetic windows
# ----------------------------------------------------------------------


class _FakeSimulator:
    def __init__(self):
        self.now = 0.0
        self._pending = []

    def schedule(self, delay_s, fn):
        self._pending.append((self.now + delay_s, fn))

    def step(self):
        when, fn = self._pending.pop(0)
        self.now = when
        fn()


class _FakeCollector:
    def __init__(self):
        self.records = []
        self.n_shed = 0


CONFIG = OnlineControllerConfig(
    target_p99_s=1.0,
    window_s=1.0,
    step=0.25,
    deadband=0.15,
    min_scale=0.25,
    max_scale=2.0,
    shed_rate_high=0.05,
    min_samples=8,
)


def _drive(windows, config=CONFIG):
    """Feed (latencies, n_shed) windows through a controller; return it."""
    policy = OnlineAdaptivePolicy(TABLE)
    controller = OnlineDegreeController(policy, config)
    simulator = _FakeSimulator()
    collector = _FakeCollector()
    controller.attach(simulator, None, collector, horizon_s=10 * len(windows) + 10)
    for latencies, n_shed in windows:
        collector.records = collector.records + [
            SimpleNamespace(latency=float(v)) for v in latencies
        ]
        collector.n_shed += n_shed
        simulator.step()
    return controller


# A window is (latency list, shed count); latencies as multiples of the
# 1-second target.
window_strategy = st.tuples(
    st.lists(
        st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
        min_size=0,
        max_size=40,
    ),
    st.integers(min_value=0, max_value=20),
)


class TestControllerStability:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(window_strategy, min_size=1, max_size=40))
    def test_bounded_oscillation(self, windows):
        """For ANY feedback sequence: the scale stays inside its clamps
        and moves by at most one bounded multiplicative step per tick."""
        controller = _drive(windows)
        config = controller.config
        previous = 1.0
        for decision in controller.decisions:
            assert config.min_scale <= decision.scale <= config.max_scale
            low = previous * (1.0 - config.step) - 1e-12
            high = previous * (1.0 + config.step) + 1e-12
            assert (
                low <= decision.scale <= high
                or decision.scale in (config.min_scale, config.max_scale)
            )
            previous = decision.scale

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=20))
    def test_monotone_tighten_under_sustained_overload(self, n_windows):
        """P99 persistently above the deadband: scale never increases,
        and eventually pins at min_scale."""
        windows = [([5.0] * 20, 0)] * n_windows
        controller = _drive(windows)
        scales = [d.scale for d in controller.decisions]
        assert all(b <= a + 1e-12 for a, b in zip(scales, scales[1:]))
        assert all(d.action in ("tighten", "hold") for d in controller.decisions)
        if n_windows >= 6:
            assert scales[-1] == pytest.approx(CONFIG.min_scale)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=20))
    def test_monotone_relax_under_sustained_calm(self, n_windows):
        """P99 persistently below the deadband with no sheds: scale never
        decreases, and saturates at max_scale."""
        windows = [([0.1] * 20, 0)] * n_windows
        controller = _drive(windows)
        scales = [d.scale for d in controller.decisions]
        assert all(b >= a - 1e-12 for a, b in zip(scales, scales[1:]))
        if n_windows >= 6:
            assert scales[-1] == pytest.approx(CONFIG.max_scale)

    def test_deadband_holds(self):
        """P99 inside the hysteresis band: no adjustment at all."""
        controller = _drive([([1.0] * 20, 0)] * 10)
        assert all(d.action == "hold" for d in controller.decisions)
        assert controller.policy.scale == 1.0

    def test_sparse_windows_hold(self):
        """Fewer completions than min_samples and no sheds: the latency
        signal is not trusted and the knobs stay put."""
        controller = _drive([([5.0] * 3, 0)] * 10)
        assert all(d.action == "hold" for d in controller.decisions)

    def test_shed_rate_alone_tightens(self):
        """Deep overload shows up as sheds even when completions look
        fast (censored survivors): the shed-rate override tightens."""
        controller = _drive([([0.1] * 20, 10)] * 5)
        assert controller.decisions[0].action == "tighten"
        assert controller.policy.scale < 1.0

    def test_decisions_record_window_accounting(self):
        controller = _drive([([0.5] * 10, 2), ([2.0] * 12, 0)])
        first, second = controller.decisions
        assert isinstance(first, ControlDecision)
        assert first.n_completed == 10 and first.n_shed == 2
        assert second.n_completed == 12 and second.n_shed == 0
        assert second.action == "tighten"

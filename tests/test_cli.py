"""Tests for the command-line entry point."""


from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "e01" in out and "e11" in out and "e13" in out

    def test_no_args_is_usage_error(self, capsys):
        assert main([]) == 2

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["e99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_runs_fast_experiment_small_scale(self, capsys, tmp_path):
        code = main(["e02", "--scale", "small", "--json-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "E02" in out
        assert (tmp_path / "e02.json").exists()

    def test_case_insensitive_ids(self, capsys):
        assert main(["E03", "--scale", "small"]) == 0

    def test_failed_check_sets_exit_code(self, monkeypatch, capsys):
        from repro.harness import registry
        from repro.harness.result import ExperimentResult

        def fake_run(ctx):
            result = ExperimentResult("e02", "t", "d")
            result.add_check("always fails", False)
            return result

        monkeypatch.setitem(registry.EXPERIMENTS, "e02", fake_run)
        assert main(["e02", "--scale", "small"]) == 1

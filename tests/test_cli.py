"""Tests for the command-line entry point."""


from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "e01" in out and "e11" in out and "e13" in out

    def test_no_args_is_usage_error(self, capsys):
        assert main([]) == 2

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["e99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_runs_fast_experiment_small_scale(self, capsys, tmp_path):
        code = main(["e02", "--scale", "small", "--json-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "E02" in out
        assert (tmp_path / "e02.json").exists()

    def test_case_insensitive_ids(self, capsys):
        assert main(["E03", "--scale", "small"]) == 0

    def test_failed_check_sets_exit_code(self, monkeypatch, capsys):
        from repro.harness import registry
        from repro.harness.result import ExperimentResult

        def fake_run(ctx):
            result = ExperimentResult("e02", "t", "d")
            result.add_check("always fails", False)
            return result

        monkeypatch.setitem(registry.EXPERIMENTS, "e02", fake_run)
        assert main(["e02", "--scale", "small"]) == 1


class TestServeCli:
    def test_serve_and_loadgen_end_to_end(self, capsys, tmp_path):
        """Boot `repro serve` in a subprocess, drive it with the
        in-process `repro loadgen`, then shut it down over the wire."""
        import json
        import os
        import re
        import subprocess
        import sys

        env = dict(os.environ)
        repo_src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(repo_src)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--scale", "small",
             "--port", "0", "--no-engine", "--duration", "60"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=env,
        )
        try:
            port = None
            for _ in range(50):  # banner follows the ~1s system build
                line = proc.stdout.readline()
                if not line:
                    break
                match = re.search(r"on 127\.0\.0\.1:(\d+)", line)
                if match:
                    port = int(match.group(1))
                    break
            assert port, "serve never printed its bound port"

            code = main(["loadgen", "--port", str(port), "--rate", "40",
                         "--duration", "0.25", "--seed", "3"])
            out = capsys.readouterr().out
            assert code == 0
            outcome = json.loads(out)
            assert outcome["n_requests"] > 0
            assert outcome["n_lost"] == 0
            assert outcome["n_completed"] + outcome["n_shed"] == (
                outcome["n_requests"]
            )
            assert outcome["server_summary"]["n_cores"] > 0

            import socket

            with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
                s.sendall(b'{"id": 0, "op": "shutdown"}\n')
                s.recv(4096)
            proc.wait(timeout=30)
            assert proc.returncode == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    def test_livesmoke_writes_report(self, capsys, tmp_path):
        import json

        out = tmp_path / "report.json"
        code = main(["livesmoke", "--smoke", "--duration", "0.4",
                     "--dilation", "2.0", "--output", str(out)])
        stdout = capsys.readouterr().out
        # The calibrated-band gate is the CI livesmoke step; here we pin
        # the command wiring, table output, and report artifact.
        assert code in (0, 1)
        assert "e05-light" in stdout and "e19-overload" in stdout
        report = json.loads(out.read_text())
        assert len(report["points"]) == 3
        assert report["dilation"] == 2.0

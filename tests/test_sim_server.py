"""Tests for the simulated ISN: dispatch, clamping, metrics, load points."""

import numpy as np
import pytest

from repro.analysis.queueing_theory import mmc_mean_queue_delay
from repro.engine.query import Query
from repro.policies.adaptive import ThresholdTable
from repro.policies.base import ParallelismPolicy, QueryInfo, SystemState
from repro.policies.fixed import FixedPolicy, SequentialPolicy
from repro.policies.incremental import IncrementalPolicy
from repro.profiles.measurement import QueryCostTable
from repro.sim.arrivals import TraceArrivals
from repro.sim.engine import Simulator
from repro.sim.experiment import LoadPointConfig, run_load_point
from repro.sim.metrics import MetricsCollector, QueryRecord
from repro.sim.oracle import ServiceOracle
from repro.sim.server import IndexServerModel


def _constant_table(n_queries=10, t1=1.0, degrees=(1, 2, 4), speedup=None):
    """Cost table with constant per-degree latencies for controlled tests."""
    speedup = speedup or {1: 1.0, 2: 1.8, 4: 3.0}
    latency = np.stack(
        [np.full(n_queries, t1 / speedup[p]) for p in degrees], axis=1
    )
    cpu = latency * np.asarray(degrees)[None, :]
    chunks = np.ones((n_queries, len(degrees)), dtype=np.int64)
    queries = [Query.of([0], query_id=i) for i in range(n_queries)]
    return QueryCostTable(queries, degrees, latency, cpu, chunks)


def _run_trace(policy, arrival_times, n_cores=4, table=None, horizon=100.0,
               **server_kwargs):
    """Drive explicit arrivals through a server; return (metrics, server)."""
    table = table if table is not None else _constant_table()
    oracle = ServiceOracle(table)
    sim = Simulator()
    metrics = MetricsCollector(warmup=0.0, horizon=horizon, n_cores=n_cores)
    server = IndexServerModel(sim, oracle, policy, n_cores, metrics,
                              **server_kwargs)
    for i, t in enumerate(arrival_times):
        sim.schedule_at(t, lambda i=i: server.submit(i % oracle.n_queries))
    sim.run()
    return metrics, server


class TestOracle:
    def test_clamp_degree(self):
        oracle = ServiceOracle(_constant_table())
        assert oracle.clamp_degree(1) == 1
        assert oracle.clamp_degree(3) == 2
        assert oracle.clamp_degree(4) == 4
        assert oracle.clamp_degree(100) == 4

    def test_info_carries_truth(self):
        oracle = ServiceOracle(_constant_table(t1=2.0))
        info = oracle.info(0)
        assert info.true_sequential_latency == pytest.approx(2.0)

    def test_predictions_validated(self):
        table = _constant_table(n_queries=5)
        with pytest.raises(Exception):
            ServiceOracle(table, predicted_latencies=[1.0, 2.0])


class TestDispatch:
    def test_sequential_fcfs_on_single_core(self):
        metrics, _ = _run_trace(
            SequentialPolicy(), [0.0, 0.1, 0.2], n_cores=1,
            table=_constant_table(t1=1.0),
        )
        records = sorted(metrics.records, key=lambda r: r.arrival)
        # Service is 1s each; completions at 1, 2, 3.
        assert [r.completion for r in records] == pytest.approx([1.0, 2.0, 3.0])
        # FCFS: starts in arrival order.
        starts = [r.start for r in records]
        assert starts == sorted(starts)

    def test_parallel_query_occupies_degree_cores(self):
        # Two fixed-2 queries on 4 cores arriving together run concurrently.
        metrics, _ = _run_trace(FixedPolicy(2), [0.0, 0.0], n_cores=4)
        completions = [r.completion for r in metrics.records]
        assert completions == pytest.approx([1.0 / 1.8] * 2)

    def test_degree_clamped_to_free_cores(self):
        # One fixed-4 query on 2 cores: granted degree must be 2.
        metrics, _ = _run_trace(FixedPolicy(4), [0.0], n_cores=2)
        assert metrics.records[0].degree == 2

    def test_degree_clamped_to_measured_grid(self):
        # Request 4 with 3 free cores -> grant 2 (largest measured <= 3).
        metrics, _ = _run_trace(FixedPolicy(4), [0.0], n_cores=3)
        assert metrics.records[0].degree == 2

    def test_conservation_arrivals_completions(self):
        metrics, server = _run_trace(
            FixedPolicy(2), np.linspace(0, 5, 40).tolist(), n_cores=4
        )
        assert metrics.n_arrivals == 40
        assert metrics.n_completions == 40
        assert server.n_running == 0
        assert server.free_cores == 4

    def test_policy_sees_correct_state(self):
        observed = []

        class Spy(ParallelismPolicy):
            name = "spy"

            def choose_degree(self, state: SystemState, info: QueryInfo) -> int:
                observed.append((state.n_in_system, state.free_cores))
                return 1

        _run_trace(Spy(), [0.0, 0.0, 0.0], n_cores=2,
                   table=_constant_table(t1=1.0))
        # First two dispatch immediately (1 then 2 in system); the third
        # waits for a free core (by then 1 running + itself = 2... it
        # dispatches after a completion).
        assert observed[0] == (1, 2)
        assert observed[1][0] == 2

    def test_utilization_bounded(self):
        metrics, _ = _run_trace(
            FixedPolicy(4), np.linspace(0, 2, 100).tolist(), n_cores=4,
        )
        assert 0.0 < metrics.utilization() <= 1.0 + 1e-9


class TestIncrementalJobs:
    TABLE = ThresholdTable.from_pairs([(2, 4)])

    def test_short_query_never_escalates(self):
        # probe 2.0 > t1 1.0: stays sequential, latency == t1.
        policy = IncrementalPolicy(self.TABLE, probe_time=2.0)
        metrics, _ = _run_trace(policy, [0.0], n_cores=4)
        record = metrics.records[0]
        assert record.degree == 1
        assert record.latency == pytest.approx(1.0)

    def test_long_query_escalates_and_finishes_faster(self):
        policy = IncrementalPolicy(self.TABLE, probe_time=0.25)
        metrics, _ = _run_trace(policy, [0.0], n_cores=4)
        record = metrics.records[0]
        assert record.degree == 4
        # probe 0.25 + remaining 0.75 of work at S(4)=3: 0.25 + 0.25 = 0.5.
        assert record.latency == pytest.approx(0.25 + 0.75 / 3.0)
        assert record.latency < 1.0

    def test_escalation_degrades_gracefully_without_cores(self):
        # Single core: escalation cannot widen; query completes sequentially.
        policy = IncrementalPolicy(self.TABLE, probe_time=0.25)
        metrics, _ = _run_trace(policy, [0.0], n_cores=1)
        record = metrics.records[0]
        assert record.degree == 1
        assert record.latency == pytest.approx(1.0)

    def test_planned_escalation_finds_zero_free_cores(self):
        # Two queries on 2 cores: A dispatches with 2 free cores and plans
        # an escalation to 2; B takes the other core for its full t1. When
        # A's probe ends, zero cores are free beyond its own, so the
        # escalation continues sequentially (`actual == 1`) — the query
        # must not stall, and total work is conserved: probe + remaining
        # 0.75 of t1 sequentially = exactly t1.
        policy = IncrementalPolicy(self.TABLE, probe_time=0.25)
        metrics, server = _run_trace(policy, [0.0, 0.0], n_cores=2)
        assert len(metrics.records) == 2
        for record in metrics.records:
            assert record.degree == 1
            assert record.latency == pytest.approx(1.0)
        assert server.free_cores == 2
        assert server.n_running == 0

    def test_starved_escalation_recomputes_at_probe_end(self):
        # Same setup, with a slowdown window opening exactly at the probe
        # boundary. B (dispatched healthy at t=0) is untouched; A's
        # sequential continuation is priced at escalation time and pays
        # the 2x multiplier: 0.25 probe + 0.75 * 2 = 1.75. This pins the
        # `actual == 1` branch to the escalation-time recompute rather
        # than the dispatch-time plan.
        from repro.sim.faults import FaultSchedule

        policy = IncrementalPolicy(self.TABLE, probe_time=0.25)
        metrics, _ = _run_trace(
            policy, [0.0, 0.0], n_cores=2,
            faults=FaultSchedule.slowdown(0.25, 10.0, 2.0),
        )
        completions = sorted(r.completion for r in metrics.records)
        assert completions == pytest.approx([1.0, 1.75])


class TestMetricsCollector:
    def test_warmup_filters_arrivals(self):
        metrics = MetricsCollector(warmup=1.0, horizon=10.0, n_cores=2)
        metrics.on_completion(QueryRecord(0, arrival=0.5, start=0.5,
                                          completion=2.0, degree=1))
        metrics.on_completion(QueryRecord(1, arrival=1.5, start=1.5,
                                          completion=2.0, degree=1))
        assert metrics.n_observed == 1

    def test_post_horizon_completions_kept_for_latency(self):
        metrics = MetricsCollector(warmup=0.0, horizon=10.0, n_cores=2)
        metrics.on_completion(QueryRecord(0, arrival=9.0, start=9.0,
                                          completion=12.0, degree=1))
        assert metrics.n_observed == 1
        assert metrics.n_completed_in_window == 0

    def test_core_usage_clipped_to_window(self):
        metrics = MetricsCollector(warmup=1.0, horizon=3.0, n_cores=1)
        metrics.on_core_usage(0.0, 4.0, cores=1)
        assert metrics.busy_core_seconds == pytest.approx(2.0)
        assert metrics.utilization() == pytest.approx(1.0)

    def test_degree_histogram_fractions(self):
        metrics = MetricsCollector(warmup=0.0, horizon=1.0, n_cores=2)
        for degree in (1, 1, 2, 4):
            metrics.on_completion(QueryRecord(0, 0.0, 0.0, 0.5, degree))
        histogram = metrics.degree_histogram()
        assert histogram == {1: 0.5, 2: 0.25, 4: 0.25}
        assert metrics.mean_degree() == pytest.approx(2.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(Exception):
            MetricsCollector(warmup=5.0, horizon=5.0, n_cores=1)


class TestRunLoadPoint:
    def test_summary_fields_consistent(self):
        table = _constant_table(n_queries=50, t1=0.01)
        oracle = ServiceOracle(table)
        summary = run_load_point(
            oracle, SequentialPolicy(),
            LoadPointConfig(rate=100.0, duration=10.0, warmup=1.0,
                            n_cores=4, seed=1),
        )
        assert summary.observed > 0
        assert summary.p99_latency >= summary.p50_latency
        assert summary.mean_latency >= 0.01 - 1e-9
        assert 0 < summary.utilization <= 1.0

    def test_matches_erlang_c(self):
        """Deterministic-degree-1 exponential service: simulator == M/M/c."""
        rng = np.random.default_rng(3)
        n = 4000
        mean_service = 0.005
        latencies = rng.exponential(mean_service, size=n)
        latencies *= mean_service / latencies.mean()
        table = QueryCostTable(
            [Query.of([0], query_id=i) for i in range(n)],
            (1,),
            latencies.reshape(n, 1),
            latencies.reshape(n, 1).copy(),
            np.ones((n, 1), dtype=np.int64),
        )
        oracle = ServiceOracle(table)
        n_cores, rho = 4, 0.7
        rate = rho * n_cores / mean_service
        summary = run_load_point(
            oracle, SequentialPolicy(),
            LoadPointConfig(rate=rate, duration=150.0, warmup=10.0,
                            n_cores=n_cores, seed=2),
        )
        theory = mmc_mean_queue_delay(rate, 1.0 / mean_service, n_cores)
        assert summary.mean_queue_delay == pytest.approx(theory, rel=0.15)

    def test_reproducible_for_same_seed(self):
        table = _constant_table(n_queries=30, t1=0.01)
        oracle = ServiceOracle(table)
        config = LoadPointConfig(rate=50.0, duration=5.0, warmup=1.0,
                                 n_cores=4, seed=9)
        a = run_load_point(oracle, FixedPolicy(2), config)
        b = run_load_point(oracle, FixedPolicy(2), config)
        assert a.p99_latency == b.p99_latency  # reprolint: disable=R004 -- bit-identical replay is the property under test
        assert a.observed == b.observed

    def test_custom_arrival_process_used(self):
        table = _constant_table(n_queries=10, t1=0.001)
        oracle = ServiceOracle(table)
        arrivals = TraceArrivals([0.1, 0.2, 0.3])
        summary = run_load_point(
            oracle, SequentialPolicy(),
            LoadPointConfig(rate=1000.0, duration=1.0, warmup=0.0,
                            n_cores=2, seed=0),
            arrivals=arrivals,
        )
        assert summary.observed == 3

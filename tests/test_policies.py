"""Tests for parallelism policies and threshold derivation."""

import pytest

from repro.errors import PolicyError
from repro.policies.adaptive import AdaptivePolicy, ThresholdTable
from repro.policies.base import QueryInfo, SystemState
from repro.policies.derivation import derive_threshold_table
from repro.policies.fixed import FixedPolicy, SequentialPolicy
from repro.policies.incremental import IncrementalPolicy
from repro.policies.oracle import OraclePolicy
from repro.policies.predictive import PredictivePolicy
from repro.profiles.speedup import ParametricSpeedup


def _state(n_in_system: int, n_cores: int = 12) -> SystemState:
    """State with the given queries-in-system (all running, none queued)."""
    running = n_in_system - 1
    return SystemState(
        now=0.0,
        n_queued=0,
        n_running=running,
        free_cores=max(n_cores - running, 1),
        n_cores=n_cores,
    )


class TestThresholdTable:
    def test_degree_lookup(self):
        table = ThresholdTable.from_pairs([(1, 12), (2, 6), (4, 3), (8, 2)])
        assert [table.degree_for(n) for n in (1, 2, 3, 4, 5, 8, 9, 100)] == [
            12, 6, 3, 3, 2, 2, 1, 1]

    def test_max_degree(self):
        assert ThresholdTable.from_pairs([(1, 8), (4, 2)]).max_degree == 8

    def test_monotonicity_enforced(self):
        with pytest.raises(PolicyError):
            ThresholdTable.from_pairs([(1, 4), (2, 8)])  # degree rises
        with pytest.raises(PolicyError):
            ThresholdTable.from_pairs([(2, 4), (2, 2)])  # limit repeats
        with pytest.raises(PolicyError):
            ThresholdTable.from_pairs([])

    def test_invalid_degree_rejected(self):
        with pytest.raises(PolicyError):
            ThresholdTable.from_pairs([(1, 0)])

    def test_degree_for_validates_load(self):
        table = ThresholdTable.from_pairs([(1, 2)])
        with pytest.raises(PolicyError):
            table.degree_for(0)

    def test_describe_mentions_fallback(self):
        text = ThresholdTable.from_pairs([(2, 4)]).describe()
        assert "p=1" in text and "p=4" in text


class TestFixedPolicies:
    def test_fixed_ignores_state(self):
        policy = FixedPolicy(6)
        assert policy.choose_degree(_state(1), QueryInfo()) == 6
        assert policy.choose_degree(_state(50), QueryInfo()) == 6

    def test_sequential_is_fixed_one(self):
        policy = SequentialPolicy()
        assert policy.degree == 1
        assert policy.name == "sequential"

    def test_names(self):
        assert FixedPolicy(4).name == "fixed-4"


class TestAdaptivePolicy:
    def test_degree_decreases_with_load(self):
        table = ThresholdTable.from_pairs([(1, 12), (2, 6), (4, 3), (8, 2)])
        policy = AdaptivePolicy(table)
        degrees = [policy.choose_degree(_state(n), QueryInfo()) for n in range(1, 15)]
        assert degrees == sorted(degrees, reverse=True)
        assert degrees[0] == 12 and degrees[-1] == 1


class TestDerivation:
    def test_shape_from_parametric_curve(self):
        curve = ParametricSpeedup(serial=0.05, waste=0.01)
        table = derive_threshold_table(curve, n_cores=12,
                                       degrees=(1, 2, 3, 4, 6, 8, 12))
        # Lightly loaded system gets the widest useful degree.
        assert table.degree_for(1) >= 6
        # Heavily loaded system degrades to sequential.
        assert table.degree_for(13) == 1

    def test_degrees_respect_fair_share(self):
        curve = ParametricSpeedup(serial=0.0, waste=0.0)  # ideal speedup
        table = derive_threshold_table(curve, n_cores=12,
                                       degrees=(1, 2, 3, 4, 6, 12))
        # With perfect speedup, degree(n) should be the fair share 12//n
        # (restricted to candidate degrees).
        assert table.degree_for(1) == 12
        assert table.degree_for(2) == 6
        assert table.degree_for(3) == 4
        assert table.degree_for(4) == 3
        assert table.degree_for(6) == 2

    def test_useless_parallelism_gives_sequential_table(self):
        curve = ParametricSpeedup(serial=1.0, waste=0.5)  # S(p) < 1 for p>1
        table = derive_threshold_table(curve, n_cores=8, degrees=(1, 2, 4))
        assert all(table.degree_for(n) == 1 for n in range(1, 10))

    def test_plateaued_curve_prefers_smaller_degree(self):
        # Speedup flat beyond 4: derivation must not pick 8.
        class Plateau:
            def speedup(self, p):
                return min(p, 4.0) if p <= 4 else 4.0 - 0.01 * (p - 4)

        table = derive_threshold_table(Plateau(), n_cores=8, degrees=(1, 2, 4, 8))
        assert table.degree_for(1) == 4

    def test_measured_profile_accepted(self, small_system):
        table = derive_threshold_table(small_system.profile, n_cores=8)
        assert table.max_degree >= 2

    def test_missing_degrees_for_bare_curve_rejected(self):
        class Bare:
            def speedup(self, p):
                return float(p)

        with pytest.raises(PolicyError):
            derive_threshold_table(Bare(), n_cores=4)


class TestGatedPolicies:
    TABLE = ThresholdTable.from_pairs([(1, 8), (2, 4), (4, 2)])

    def test_oracle_requires_truth(self):
        policy = OraclePolicy(self.TABLE, long_query_cutoff=1e-3)
        with pytest.raises(PolicyError):
            policy.choose_degree(_state(1), QueryInfo())

    def test_oracle_gates_short_queries(self):
        policy = OraclePolicy(self.TABLE, long_query_cutoff=1e-3)
        short = QueryInfo(true_sequential_latency=1e-4)
        long_ = QueryInfo(true_sequential_latency=1e-2)
        assert policy.choose_degree(_state(1), short) == 1
        assert policy.choose_degree(_state(1), long_) == 8

    def test_predictive_requires_prediction(self):
        policy = PredictivePolicy(self.TABLE, long_query_cutoff=1e-3)
        with pytest.raises(PolicyError):
            policy.choose_degree(_state(1), QueryInfo())

    def test_predictive_gates_on_prediction(self):
        policy = PredictivePolicy(self.TABLE, long_query_cutoff=1e-3)
        short = QueryInfo(predicted_sequential_latency=1e-4)
        long_ = QueryInfo(predicted_sequential_latency=5e-3)
        assert policy.choose_degree(_state(1), short) == 1
        assert policy.choose_degree(_state(2), long_) == 4

    def test_incremental_exposes_probe_time(self):
        policy = IncrementalPolicy(self.TABLE, probe_time=2e-3)
        assert policy.probe_time == pytest.approx(2e-3)
        assert policy.choose_degree(_state(1), QueryInfo()) == 8

    def test_incremental_rejects_bad_probe(self):
        with pytest.raises(Exception):
            IncrementalPolicy(self.TABLE, probe_time=0.0)

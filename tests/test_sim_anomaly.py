"""Anomaly detection, SLA validation, and the degradation ladder."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.policies.adaptive import ThresholdTable
from repro.policies.online import OnlineAdaptivePolicy
from repro.sim.anomaly import (
    AnomalyGuard,
    AnomalyGuardConfig,
    DegradationLevel,
    EwmaCusumDetector,
    SlaValidator,
)


# ----------------------------------------------------------------------
# Detector
# ----------------------------------------------------------------------


class TestEwmaCusumDetector:
    def test_constant_signal_never_alarms(self):
        det = EwmaCusumDetector(alpha=0.3)
        assert not any(det.update(100.0) for _ in range(200))

    def test_small_noise_never_alarms(self):
        det = EwmaCusumDetector(alpha=0.3)
        rng = np.random.default_rng(5)
        values = 100.0 + rng.normal(0.0, 1.0, size=300)
        assert not any(det.update(float(v)) for v in values)

    def test_step_change_alarms_quickly(self):
        det = EwmaCusumDetector(alpha=0.3)
        rng = np.random.default_rng(5)
        for v in 100.0 + rng.normal(0.0, 1.0, size=50):
            det.update(float(v))
        alarmed_at = None
        for i in range(10):
            if det.update(150.0):
                alarmed_at = i
                break
        assert alarmed_at is not None and alarmed_at <= 3

    def test_statistic_clamped_so_alarm_can_clear(self):
        det = EwmaCusumDetector(alpha=0.3)
        rng = np.random.default_rng(5)
        baseline = 100.0 + rng.normal(0.0, 1.0, size=50)
        for v in baseline:
            det.update(float(v))
        for _ in range(30):  # sustained huge shift
            det.update(1000.0)
        assert det.statistic <= 2.0 * det.h
        # Signal returns to baseline: alarm clears within ~h/k windows.
        cleared_at = None
        for i in range(int(2 * det.h / det.k) + 2):
            if not det.update(float(det.mean)):
                cleared_at = i
                break
        assert cleared_at is not None

    def test_baseline_frozen_while_alarming(self):
        det = EwmaCusumDetector(alpha=0.3, k=0.5, h=2.0)
        rng = np.random.default_rng(5)
        for v in 100.0 + rng.normal(0.0, 1.0, size=50):
            det.update(float(v))
        mean_before = det.mean
        for _ in range(20):
            det.update(500.0)
        # A sustained attack must not be absorbed into "normal".
        assert det.mean == pytest.approx(mean_before, rel=0.05)

    def test_reset_clears_statistic_only(self):
        det = EwmaCusumDetector(alpha=0.3, k=0.5, h=2.0, warmup=2)
        for v in (10.0, 10.0, 11.0, 10.0, 50.0, 50.0, 50.0):
            det.update(v)
        mean_before = det.mean
        det.reset()
        assert det.statistic == 0.0
        assert det.mean == mean_before

    def test_nonfinite_observations_ignored(self):
        det = EwmaCusumDetector(alpha=0.3, k=0.5, h=2.0)
        det.update(10.0)
        assert not det.update(float("nan"))
        assert det.mean == 10.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EwmaCusumDetector(alpha=0.0)
        with pytest.raises(ConfigurationError):
            EwmaCusumDetector(alpha=0.3, k=-1.0)
        with pytest.raises(ConfigurationError):
            EwmaCusumDetector(alpha=0.3, h=0.0)
        with pytest.raises(ConfigurationError):
            EwmaCusumDetector(alpha=0.3, warmup=0)


# ----------------------------------------------------------------------
# SLA validation
# ----------------------------------------------------------------------


class TestSlaValidator:
    def test_empty_window_passes(self):
        assert SlaValidator(1.0, 0.05).check(np.array([]), 0)

    def test_sheds_count_as_misses(self):
        validator = SlaValidator(1.0, 0.05)
        fast = np.full(90, 0.5)
        assert validator.check(fast, n_shed=4)  # 4/94 < 5%
        assert not validator.check(fast, n_shed=10)  # 10/100 > 5%

    def test_epsilon_boundary_inclusive(self):
        validator = SlaValidator(1.0, 0.05)
        latencies = np.array([0.5] * 95 + [2.0] * 5)
        assert validator.check(latencies, 0)  # exactly 5% misses

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlaValidator(0.0, 0.05)
        with pytest.raises(ConfigurationError):
            SlaValidator(1.0, 1.0)


# ----------------------------------------------------------------------
# Guard config validation
# ----------------------------------------------------------------------


class TestAnomalyGuardConfig:
    def test_rejects_bad_values(self):
        good = dict(slo_s=1.0, window_s=0.5)
        with pytest.raises(ConfigurationError, match="slo_s"):
            AnomalyGuardConfig(slo_s=-1.0, window_s=0.5)
        with pytest.raises(ConfigurationError, match="window_s"):
            AnomalyGuardConfig(slo_s=1.0, window_s=0.0)
        with pytest.raises(ConfigurationError, match="sla_epsilon"):
            AnomalyGuardConfig(**good, sla_epsilon=1.0)
        with pytest.raises(ConfigurationError, match="degraded_degree_cap"):
            AnomalyGuardConfig(**good, degraded_degree_cap=0)
        with pytest.raises(ConfigurationError, match="recovery_windows"):
            AnomalyGuardConfig(**good, recovery_windows=0)
        with pytest.raises(ConfigurationError, match="shed_classes"):
            AnomalyGuardConfig(**good, shed_classes=("",))


# ----------------------------------------------------------------------
# The degradation ladder, driven window by window
# ----------------------------------------------------------------------


class _FakeSimulator:
    def __init__(self):
        self.now = 0.0
        self._pending = []

    def schedule(self, delay_s, fn):
        self._pending.append((self.now + delay_s, fn))

    def step(self):
        when, fn = self._pending.pop(0)
        self.now = when
        fn()


class _FakeCollector:
    def __init__(self):
        self.n_arrivals = 0
        self.records = []
        self.n_shed = 0

    def add_window(self, n_arrivals, latencies, n_shed=0):
        self.n_arrivals += n_arrivals
        self.records = self.records + [
            SimpleNamespace(latency=float(v)) for v in latencies
        ]
        self.n_shed += n_shed


class _FakeServer:
    def __init__(self, max_queue_length=100):
        self.max_queue_length = max_queue_length
        self.shed_classes = None


def _make_guard(**overrides):
    config = AnomalyGuardConfig(
        slo_s=1.0,
        window_s=1.0,
        sla_epsilon=0.05,
        cusum_h=3.0,
        degraded_degree_cap=2,
        shedding_queue_cap=8,
        shed_classes=("slow_query_flood",),
        recovery_windows=2,
        **overrides,
    )
    policy = OnlineAdaptivePolicy(
        ThresholdTable.from_pairs([(2, 8), (4, 4), (8, 2)])
    )
    guard = AnomalyGuard(config, policy=policy)
    simulator = _FakeSimulator()
    collector = _FakeCollector()
    server = _FakeServer()
    guard.attach(simulator, server, collector, horizon_s=1000.0)
    return guard, simulator, collector, server, policy


CALM = dict(n_arrivals=100, latencies=[0.3] * 40)
ATTACK = dict(n_arrivals=400, latencies=[0.3] * 10 + [5.0] * 30, n_shed=20)
# Anomalous rate but the SLA holds (an absorbed surge).
SURGE = dict(n_arrivals=400, latencies=[0.3] * 40)
# SLA misses without any rate/P99 anomaly growth is impossible to fake
# via latencies (the P99 detector would see it), so use sheds alone on
# an otherwise calm window: plain overload, no anomaly.
OVERLOAD = dict(n_arrivals=100, latencies=[0.3] * 40, n_shed=10)


def _drive(guard, simulator, collector, windows):
    for window in windows:
        collector.add_window(**window)
        simulator.step()


class TestAnomalyGuardLadder:
    def test_calm_traffic_never_degrades(self):
        guard, sim, coll, server, policy = _make_guard()
        _drive(guard, sim, coll, [CALM] * 30)
        assert guard.level == DegradationLevel.NORMAL
        assert guard.transitions == []
        assert server.shed_classes is None

    def test_absorbed_surge_does_not_escalate(self):
        guard, sim, coll, server, _ = _make_guard()
        _drive(guard, sim, coll, [CALM] * 10 + [SURGE] * 6)
        assert guard.level == DegradationLevel.NORMAL

    def test_plain_overload_without_anomaly_holds(self):
        guard, sim, coll, server, _ = _make_guard()
        _drive(guard, sim, coll, [CALM] * 10 + [OVERLOAD] * 6)
        assert guard.level == DegradationLevel.NORMAL

    def test_attack_climbs_one_rung_per_window_and_actuates(self):
        guard, sim, coll, server, policy = _make_guard()
        baseline_cap = policy.max_degree_cap
        _drive(guard, sim, coll, [CALM] * 10)
        _drive(guard, sim, coll, [ATTACK])
        assert guard.level == DegradationLevel.DEGRADED
        assert policy.max_degree_cap == 2
        assert server.shed_classes is None  # not yet shedding
        _drive(guard, sim, coll, [ATTACK])
        assert guard.level == DegradationLevel.SHEDDING
        assert server.max_queue_length == 8
        assert server.shed_classes == frozenset({"slow_query_flood"})
        # Stays at the top rung under continued attack.
        _drive(guard, sim, coll, [ATTACK] * 3)
        assert guard.level == DegradationLevel.SHEDDING
        assert baseline_cap > 2

    def test_recovery_deescalates_and_reverts_knobs(self):
        guard, sim, coll, server, policy = _make_guard()
        baseline_queue_cap = server.max_queue_length
        baseline_degree_cap = policy.max_degree_cap
        _drive(guard, sim, coll, [CALM] * 10 + [ATTACK] * 4)
        assert guard.level == DegradationLevel.SHEDDING
        # Enough clean windows to clear the clamped CUSUM and earn two
        # recovery credits per rung.
        _drive(guard, sim, coll, [CALM] * 20)
        assert guard.level == DegradationLevel.NORMAL
        assert server.max_queue_length == baseline_queue_cap
        assert server.shed_classes is None
        assert policy.max_degree_cap == baseline_degree_cap
        levels = [level for _, level in guard.transitions]
        assert levels == [
            DegradationLevel.DEGRADED,
            DegradationLevel.SHEDDING,
            DegradationLevel.DEGRADED,
            DegradationLevel.NORMAL,
        ]

    def test_transitions_are_timestamped_in_order(self):
        guard, sim, coll, server, _ = _make_guard()
        _drive(guard, sim, coll, [CALM] * 10 + [ATTACK] * 4 + [CALM] * 20)
        times = [when for when, _ in guard.transitions]
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    def test_guard_without_policy_still_sheds(self):
        config = AnomalyGuardConfig(
            slo_s=1.0, window_s=1.0, cusum_h=3.0,
            shedding_queue_cap=8, shed_classes=("slow_query_flood",),
        )
        guard = AnomalyGuard(config)  # no policy to cap
        sim, coll, server = _FakeSimulator(), _FakeCollector(), _FakeServer()
        guard.attach(sim, server, coll, horizon_s=1000.0)
        _drive(guard, sim, coll, [CALM] * 10 + [ATTACK] * 2)
        assert guard.level == DegradationLevel.SHEDDING
        assert server.shed_classes == frozenset({"slow_query_flood"})

"""Batched multi-query execution and safe per-chunk skipping.

The batch executor's contract is *bit-identity*: for every termination
configuration, each query's result — documents, scores, virtual latency,
work counters, fired rule — must equal ``engine.execute(query, 1)``
exactly. These tests pin that contract across the rule matrix, the
batched scoring kernel, the threaded batch mode, and the skipping
counters that feed the cost model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.batch import BatchExecutor, BatchStats
from repro.engine.executor import Engine, EngineConfig
from repro.engine.query import MatchMode, Query
from repro.engine.termination import TerminationConfig
from repro.errors import ConfigurationError, ExecutionError

TERMINATION_MATRIX = {
    "default": TerminationConfig(),
    "exhaustive": TerminationConfig(match_budget=None, use_score_bound=False),
    "bound_only": TerminationConfig(match_budget=None, use_score_bound=True),
    "budget_only": TerminationConfig(match_budget=64, use_score_bound=False),
    "skip_bound": TerminationConfig(
        match_budget=None, use_score_bound=True, skip_chunks=True
    ),
    "skip_only": TerminationConfig(
        match_budget=None, use_score_bound=False, skip_chunks=True
    ),
}


def _engine(workbench, termination):
    return Engine(workbench.index, EngineConfig(termination=termination))


def _assert_identical(batched, sequential):
    assert batched.doc_ids == sequential.doc_ids
    assert list(batched.scores) == list(sequential.scores)
    assert batched.latency == sequential.latency  # reprolint: disable=R004 -- bit-identity is the property under test
    assert batched.cpu_time == sequential.cpu_time  # reprolint: disable=R004 -- bit-identity is the property under test
    assert batched.chunks_evaluated == sequential.chunks_evaluated
    assert batched.chunks_skipped == sequential.chunks_skipped
    assert batched.postings_scanned == sequential.postings_scanned
    assert batched.termination_rule == sequential.termination_rule
    assert batched.terminated_early == sequential.terminated_early


class TestBatchExecutorEquivalence:
    @pytest.mark.parametrize("name", sorted(TERMINATION_MATRIX))
    def test_bit_identical_to_sequential(
        self, small_workbench, sample_queries, name
    ):
        engine = _engine(small_workbench, TERMINATION_MATRIX[name])
        queries = sample_queries[:30]
        batched = engine.execute_batch(queries)
        assert len(batched) == len(queries)
        for query, result in zip(queries, batched):
            _assert_identical(result, engine.execute(query, 1))

    def test_execute_one_matches_batch(self, small_engine, sample_queries):
        executor = small_engine.batch_executor()
        for query in sample_queries[:10]:
            _assert_identical(
                executor.execute_one(query), small_engine.execute(query, 1)
            )

    def test_results_in_input_order(self, small_engine, sample_queries):
        queries = sample_queries[:12]
        results = small_engine.execute_batch(queries)
        assert [r.query for r in results] == list(queries)

    def test_empty_batch(self, small_engine):
        assert small_engine.execute_batch([]) == []

    def test_empty_query_in_batch(self, small_engine, small_workbench):
        vocab = small_workbench.index.lexicon.vocab_size
        queries = [Query.of([vocab - 1], k=5)]  # likely absent term
        results = small_engine.execute_batch(queries)
        assert len(results) == 1

    def test_last_stats_accounting(self, small_engine, sample_queries):
        executor = small_engine.batch_executor()
        queries = sample_queries[:20]
        results = executor.execute(queries)
        stats = executor.last_stats
        assert stats.queries == 20
        assert stats.chunks_evaluated == sum(r.chunks_evaluated for r in results)
        assert stats.chunks_skipped == sum(r.chunks_skipped for r in results)
        assert stats.chunks_speculative >= 0
        assert stats.waves >= 1

    def test_wave_parameters_do_not_change_results(
        self, small_workbench, sample_queries
    ):
        engine = _engine(small_workbench, TERMINATION_MATRIX["default"])
        queries = sample_queries[:15]
        small_waves = engine.batch_executor(initial_wave=1, max_wave=2).execute(
            queries
        )
        big_waves = engine.batch_executor(
            initial_wave=32, max_wave=256
        ).execute(queries)
        for a, b in zip(small_waves, big_waves):
            _assert_identical(a, b)

    def test_wave_validation(self, small_workbench):
        with pytest.raises(ConfigurationError):
            BatchExecutor(small_workbench.index, initial_wave=0)
        with pytest.raises(ConfigurationError):
            BatchExecutor(small_workbench.index, initial_wave=8, max_wave=4)

    def test_default_stats(self, small_workbench):
        executor = BatchExecutor(small_workbench.index)
        assert executor.last_stats == BatchStats()


class TestScoreChunksKernel:
    @pytest.mark.parametrize("mode", [MatchMode.ALL, MatchMode.ANY])
    def test_bit_identical_to_per_chunk(self, small_engine, small_workbench, mode):
        generator = small_workbench.query_generator("batch-kernel")
        queries = [
            Query.of(q.term_ids, k=q.k, mode=mode)
            for q in generator.sample_many(20)
        ]
        plan = max(
            (small_engine.plan(q) for q in queries),
            key=lambda p: p.n_candidate_chunks,
        )
        assert plan.n_candidate_chunks >= 2, "need a multi-chunk plan"
        positions = list(range(plan.n_candidate_chunks))
        batched = plan.score_chunks(positions)
        for position, outcome in zip(positions, batched):
            single = plan.score_chunk(position)
            assert outcome.chunk_id == single.chunk_id
            assert np.array_equal(outcome.doc_ids, single.doc_ids)
            assert list(outcome.scores) == list(single.scores)
            assert outcome.postings_scanned == single.postings_scanned
            assert outcome.n_matched == single.n_matched

    def test_subset_and_stride_selections(self, small_engine, sample_queries):
        plan = max(
            (small_engine.plan(q) for q in sample_queries),
            key=lambda p: p.n_candidate_chunks,
        )
        positions = list(range(0, plan.n_candidate_chunks, 2))
        for outcome, position in zip(plan.score_chunks(positions), positions):
            single = plan.score_chunk(position)
            assert np.array_equal(outcome.doc_ids, single.doc_ids)
            assert list(outcome.scores) == list(single.scores)

    def test_empty_and_singleton(self, small_engine, sample_queries):
        plan = small_engine.plan(sample_queries[0])
        assert plan.score_chunks([]) == []
        if plan.n_candidate_chunks:
            [outcome] = plan.score_chunks([0])
            single = plan.score_chunk(0)
            assert np.array_equal(outcome.doc_ids, single.doc_ids)

    def test_rejects_bad_positions(self, small_engine, sample_queries):
        plan = max(
            (small_engine.plan(q) for q in sample_queries),
            key=lambda p: p.n_candidate_chunks,
        )
        with pytest.raises(ExecutionError):
            plan.score_chunks([1, 0])  # not ascending
        with pytest.raises(ExecutionError):
            plan.score_chunks([0, 0])  # not strictly ascending
        with pytest.raises(ExecutionError):
            plan.score_chunks([0, plan.n_candidate_chunks])  # out of range
        with pytest.raises(ExecutionError):
            plan.score_chunks([-1, 0])


class TestThreadedBatch:
    def test_bit_identical_any_termination(self, small_workbench, sample_queries):
        # Unlike intra-query threading, inter-query threading is exact
        # even under the approximate match budget: queries are
        # independent units of work.
        engine = _engine(small_workbench, TerminationConfig(match_budget=64))
        queries = sample_queries[:16]
        for result, query in zip(
            engine.execute_threaded_batch(queries, degree=4), queries
        ):
            _assert_identical(result, engine.execute(query, 1))

    def test_degree_one_runs_inline(self, small_engine, sample_queries):
        queries = sample_queries[:5]
        for result, query in zip(
            small_engine.execute_threaded_batch(queries, degree=1), queries
        ):
            _assert_identical(result, small_engine.execute(query, 1))

    def test_invalid_degree_rejected(self, small_engine, sample_queries):
        for bad in (0, -1, 1.5, True):
            with pytest.raises(ExecutionError):
                small_engine.execute_threaded_batch(sample_queries[:2], bad)


class TestSkippingSemantics:
    def test_skipping_without_budget_is_bit_identical(
        self, small_workbench, sample_queries
    ):
        skip = _engine(small_workbench, TERMINATION_MATRIX["skip_bound"])
        exhaustive = _engine(small_workbench, TERMINATION_MATRIX["exhaustive"])
        for query in sample_queries[:30]:
            a = skip.execute(query, 1)
            b = exhaustive.execute(query, 1)
            assert a.doc_ids == b.doc_ids
            assert list(a.scores) == list(b.scores)

    def test_skipping_actually_skips(self, small_workbench, sample_queries):
        skip = _engine(small_workbench, TERMINATION_MATRIX["skip_only"])
        skipped = sum(
            skip.execute(q, 1).chunks_skipped for q in sample_queries
        )
        assert skipped > 0, "per-chunk skipping never fired on 60 queries"

    def test_skipped_chunks_not_counted_as_evaluated(
        self, small_workbench, sample_queries
    ):
        skip = _engine(small_workbench, TERMINATION_MATRIX["skip_only"])
        exhaustive = _engine(small_workbench, TERMINATION_MATRIX["exhaustive"])
        for query in sample_queries[:30]:
            a = skip.execute(query, 1)
            b = exhaustive.execute(query, 1)
            assert a.chunks_evaluated + a.chunks_skipped == b.chunks_evaluated

    def test_parallel_skipping_matches_sequential(
        self, small_workbench, sample_queries
    ):
        engine = _engine(small_workbench, TERMINATION_MATRIX["skip_bound"])
        for query in sample_queries[:15]:
            sequential = engine.execute(query, 1)
            for degree in (2, 4):
                parallel = engine.execute(query, degree)
                assert parallel.doc_ids == sequential.doc_ids
                assert list(parallel.scores) == list(sequential.scores)

    def test_threaded_skipping_matches_sequential(
        self, small_workbench, sample_queries
    ):
        engine = _engine(small_workbench, TERMINATION_MATRIX["skip_bound"])
        for query in sample_queries[:8]:
            threaded = engine.execute_threaded(query, 4)
            sequential = engine.execute(query, 1)
            assert threaded.doc_ids == sequential.doc_ids


class TestBatchEdgeCases:
    """Degenerate batch shapes stay bit-identical to per-query runs."""

    def test_empty_batch_returns_empty_and_no_stats(self, small_engine):
        executor = small_engine.batch_executor()
        assert executor.execute([]) == []
        assert executor.last_stats == BatchStats(queries=0, waves=0)

    def test_single_query_batch_bit_identical(
        self, small_workbench, sample_queries
    ):
        for name in sorted(TERMINATION_MATRIX):
            engine = _engine(small_workbench, TERMINATION_MATRIX[name])
            query = sample_queries[0]
            [batched] = engine.execute_batch([query])
            _assert_identical(batched, engine.execute(query, 1))

    def test_initial_wave_equals_max_wave(
        self, small_workbench, sample_queries
    ):
        # Wave growth disabled: the doubling schedule clamps immediately,
        # so every wave has the same width. Results must not notice.
        engine = _engine(small_workbench, TERMINATION_MATRIX["default"])
        queries = sample_queries[:12]
        for wave in (1, 8):
            executor = engine.batch_executor(initial_wave=wave, max_wave=wave)
            results = executor.execute(queries)
            assert executor.last_stats.queries == len(queries)
            for query, result in zip(queries, results):
                _assert_identical(result, engine.execute(query, 1))

    @pytest.fixture(scope="class")
    def sparse_engine(self):
        # A corpus that uses a sliver of its vocabulary: most term ids
        # have no postings, so queries over them produce zero candidate
        # chunks.
        from repro.corpus.generator import CorpusConfig, generate_corpus
        from repro.index.builder import IndexConfig, build_index

        corpus = generate_corpus(
            CorpusConfig(n_docs=60, vocab_size=8_000, mean_doc_length=40,
                         seed=5)
        )
        return Engine(build_index(corpus, IndexConfig(chunk_size=16)))

    def _absent_terms(self, engine, n):
        df = engine.index.lexicon.document_frequencies()
        absent = np.nonzero(df == 0)[0]
        assert len(absent) >= n, "corpus unexpectedly uses the whole vocab"
        return [int(t) for t in absent[:n]]

    def test_all_queries_stop_before_any_scoring(self, sparse_engine):
        # Every query's terms are absent from the index: zero candidate
        # chunks, so each run finalizes without a single wave being
        # scored — and must still report the exact per-query outcome.
        terms = self._absent_terms(sparse_engine, 4)
        queries = [Query.of([t], k=5) for t in terms]
        executor = sparse_engine.batch_executor()
        results = executor.execute(queries)
        assert len(results) == len(queries)
        for query, batched in zip(queries, results):
            _assert_identical(batched, sparse_engine.execute(query, 1))
            assert batched.n_results == 0
            assert batched.chunks_evaluated == 0
        stats = executor.last_stats
        assert stats.queries == len(queries)
        assert stats.chunks_evaluated == 0
        assert stats.chunks_speculative == 0

    def test_mixed_absent_and_present_queries(self, sparse_engine):
        terms = self._absent_terms(sparse_engine, 2)
        present = [
            int(t) for t in np.nonzero(
                sparse_engine.index.lexicon.document_frequencies() > 0
            )[0][:2]
        ]
        queries = [
            Query.of([terms[0]], k=5),
            Query.of(present, k=5, mode=MatchMode.ANY),
            Query.of([terms[1]], k=5),
            Query.of([present[0]], k=5),
        ]
        results = sparse_engine.execute_batch(queries)
        for query, batched in zip(queries, results):
            _assert_identical(batched, sparse_engine.execute(query, 1))
        assert any(r.n_results > 0 for r in results)

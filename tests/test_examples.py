"""Smoke tests for the examples directory.

Every example must at least compile; the fast ones are executed
end-to-end as subprocesses so a public-API change that breaks an example
fails the suite rather than a user.
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Examples cheap enough to execute in the unit-test suite.
FAST_EXAMPLES = ["search_your_docs.py", "quickstart.py"]


def test_examples_directory_populated():
    names = {p.name for p in ALL_EXAMPLES}
    assert {"quickstart.py", "capacity_planning.py"} <= names
    assert len(names) >= 6


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"

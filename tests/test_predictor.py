"""Tests for the query latency predictor."""

import numpy as np
import pytest

from repro.errors import PolicyError
from repro.policies.predictor import QueryLatencyPredictor


@pytest.fixture(scope="module")
def fitted(small_system):
    """Predictor trained inside the small system plus its holdout data."""
    table = small_system.cost_table
    t1 = table.sequential_latencies()
    n_train = max(2, table.n_queries // 2)
    return (
        small_system.predictor,
        table.queries[n_train:],
        t1[n_train:],
        small_system.workbench.engine,
    )


class TestPredictor:
    def test_unfitted_predict_rejected(self, small_system):
        fresh = QueryLatencyPredictor()
        with pytest.raises(PolicyError):
            fresh.predict(small_system.workbench.engine,
                          small_system.cost_table.queries[0])

    def test_fit_validates_inputs(self, small_system):
        engine = small_system.workbench.engine
        queries = small_system.cost_table.queries[:3]
        with pytest.raises(PolicyError):
            QueryLatencyPredictor().fit(engine, queries, [1.0])  # length mismatch
        with pytest.raises(PolicyError):
            QueryLatencyPredictor().fit(engine, queries, [1.0, -1.0, 2.0])

    def test_predictions_positive(self, fitted):
        predictor, queries, _, engine = fitted
        predictions = predictor.predict_many(engine, queries)
        assert np.all(predictions > 0)

    def test_holdout_r2_reasonable(self, fitted):
        predictor, queries, actual, engine = fitted
        predictions = predictor.predict_many(engine, queries)
        r2 = QueryLatencyPredictor.r_squared(predictions, actual)
        assert r2 > 0.3, f"predictor uninformative: R^2={r2:.3f}"

    def test_predict_matches_predict_many(self, fitted):
        predictor, queries, _, engine = fitted
        single = predictor.predict(engine, queries[0])
        many = predictor.predict_many(engine, queries[:1])
        assert single == pytest.approx(float(many[0]))

    def test_r_squared_perfect_is_one(self):
        values = np.asarray([1.0, 2.0, 4.0])
        assert QueryLatencyPredictor.r_squared(values, values) == pytest.approx(1.0)

    def test_longer_scans_predicted_longer(self, fitted):
        """Queries in the top t1 decile should get higher predictions than
        those in the bottom decile, on average."""
        predictor, queries, actual, engine = fitted
        predictions = predictor.predict_many(engine, queries)
        lo, hi = np.percentile(actual, [10, 90])
        assert predictions[actual >= hi].mean() > predictions[actual <= lo].mean()

"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.analysis.bootstrap import (
    ConfidenceInterval,
    bootstrap_ci,
    difference_significant,
    mean_ci,
    percentile_ci,
)
from repro.errors import AnalysisError


class TestBootstrapCI:
    def test_mean_ci_covers_truth(self, rng):
        samples = rng.normal(10.0, 2.0, size=400)
        ci = mean_ci(samples, rng=rng)
        assert ci.low <= 10.0 <= ci.high or abs(ci.estimate - 10.0) < 0.5
        assert ci.low <= ci.estimate <= ci.high

    def test_interval_narrows_with_sample_size(self, rng):
        small = mean_ci(rng.normal(0, 1, 50), rng=np.random.default_rng(1))
        large = mean_ci(rng.normal(0, 1, 5_000), rng=np.random.default_rng(1))
        assert large.width < small.width

    def test_percentile_ci(self, rng):
        samples = rng.lognormal(0, 1, 2_000)
        ci = percentile_ci(samples, 99, rng=rng)
        exact = np.percentile(samples, 99)
        assert ci.estimate == pytest.approx(exact)
        assert ci.low < exact < ci.high or ci.low <= exact <= ci.high

    def test_confidence_affects_width(self, rng):
        samples = rng.normal(0, 1, 300)
        narrow = mean_ci(samples, confidence=0.8, rng=np.random.default_rng(2))
        wide = mean_ci(samples, confidence=0.99, rng=np.random.default_rng(2))
        assert wide.width > narrow.width

    def test_contains_and_str(self):
        ci = ConfidenceInterval(1.0, 0.5, 1.5, 0.95)
        assert ci.contains(1.2) and not ci.contains(2.0)
        assert "95%" in str(ci)

    def test_too_small_sample_rejected(self):
        with pytest.raises(AnalysisError):
            mean_ci([1.0])

    def test_custom_statistic(self, rng):
        samples = rng.normal(0, 1, 500)
        ci = bootstrap_ci(samples, lambda a: float(np.median(a)), rng=rng)
        assert ci.low <= ci.estimate <= ci.high


class TestDifferenceSignificant:
    def test_detects_clear_difference(self, rng):
        a = rng.normal(10.0, 1.0, 300)
        b = rng.normal(5.0, 1.0, 300)
        assert difference_significant(a, b, lambda arr: float(arr.mean()), rng=rng)

    def test_accepts_null_for_identical_distributions(self):
        rng = np.random.default_rng(7)
        a = rng.normal(0.0, 1.0, 300)
        b = rng.normal(0.0, 1.0, 300)
        assert not difference_significant(
            a, b, lambda arr: float(arr.mean()), rng=rng
        )

    def test_small_samples_rejected(self):
        with pytest.raises(AnalysisError):
            difference_significant([1.0], [2.0, 3.0], lambda a: float(a.mean()))

"""Tests for the markdown report generator."""

import pytest

from repro.errors import ConfigurationError
from repro.harness.report import generate_report, load_results_dir
from repro.harness.result import ExperimentResult
from repro.util.serde import dump_json
from repro.util.tables import Table


def _write_result(tmp_path, experiment_id, passed=True):
    result = ExperimentResult(experiment_id, f"Title {experiment_id}", "desc")
    table = Table(["x", "y"], title="T")
    table.add_row([1, 2.5])
    result.add_table(table)
    result.add_check("claim", passed, "detail")
    dump_json(result.to_json(), tmp_path / f"{experiment_id}.json")


class TestReport:
    def test_report_contains_experiments_and_tables(self, tmp_path):
        _write_result(tmp_path, "e01")
        _write_result(tmp_path, "e02")
        text = generate_report(tmp_path)
        assert "E01 — Title e01" in text
        assert "E02 — Title e02" in text
        assert "| x | y |" in text
        assert "2 experiments, 2 shape checks, 2 passed / 0 failed" in text

    def test_report_includes_manifest_provenance(self, tmp_path):
        from repro.obs.export import run_manifest, write_manifest

        _write_result(tmp_path, "e01")
        write_manifest(
            run_manifest(seed=7, scale="small", config={"a": 1},
                         experiments=["e01"], extra={"traced": True}),
            tmp_path / "manifest.json",
        )
        text = generate_report(tmp_path)
        assert "Provenance" in text
        assert "- seed: `7`" in text
        assert "- scale: `small`" in text
        assert "config_hash" in text and "git_rev" in text
        assert "e01" in text

    def test_report_without_manifest_has_no_provenance(self, tmp_path):
        _write_result(tmp_path, "e01")
        assert "Provenance" not in generate_report(tmp_path)

    def test_report_flags_failures(self, tmp_path):
        _write_result(tmp_path, "e01", passed=False)
        text = generate_report(tmp_path)
        assert "1 failed" in text
        assert "❌" in text
        assert "**Failed checks:**" in text

    def test_report_written_to_file(self, tmp_path):
        _write_result(tmp_path, "e03")
        output = tmp_path / "out" / "report.md"
        generate_report(tmp_path, output)
        assert output.exists()
        assert "E03" in output.read_text(encoding="utf-8")

    def test_results_sorted_by_id(self, tmp_path):
        _write_result(tmp_path, "e10")
        _write_result(tmp_path, "e02")
        payloads = load_results_dir(tmp_path)
        assert [p["experiment_id"] for p in payloads] == ["e02", "e10"]

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_results_dir(tmp_path)

    def test_non_result_json_rejected(self, tmp_path):
        dump_json({"not": "a result"}, tmp_path / "e01.json")
        with pytest.raises(ConfigurationError):
            load_results_dir(tmp_path)

    def test_missing_dir_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_results_dir(tmp_path / "nope")


class TestCliReport:
    def test_report_requires_json_dir(self, capsys):
        from repro.cli import main

        assert main(["e02", "--scale", "small", "--report", "r.md"]) == 2

    def test_report_flag_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "e02", "--scale", "small",
            "--json-dir", str(tmp_path),
            "--report", str(tmp_path / "report.md"),
        ])
        assert code == 0
        assert (tmp_path / "report.md").exists()

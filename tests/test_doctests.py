"""Run the doctests embedded in selected public modules.

Docstring examples are part of the documentation contract; this module
executes the ones that are self-contained (no heavyweight fixtures).
"""

import doctest

import pytest

import repro.corpus.ingest
import repro.policies.adaptive
import repro.util.rng

MODULES = [
    repro.util.rng,
    repro.policies.adaptive,
    repro.corpus.ingest,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctests"
    assert results.failed == 0, f"{results.failed} doctest failure(s)"

"""R018 determinism-taint tests beyond the generic fixture harness.

``test_reprolint.py`` already pins the r018_taint fixture's exact
finding lines and its suppression; this module exercises the pieces of
the dataflow machinery that need dedicated setups:

* declared sanitizers killing taint that interprocedural propagation
  would otherwise carry (and resurfacing it when the declaration is
  removed);
* sound-by-omission scoping — no ``[taint]`` section means no findings;
* the mutation regression from the acceptance criteria: a wall-clock
  read stored into a result dict in a copy of the real
  ``harness/result.py`` fires R018 at exactly the edited line.
"""

from __future__ import annotations

from pathlib import Path

from tools.reprolint import lint_paths

from test_reprolint import REPO_ROOT

_SANITIZER_MAP = (
    "[layers]\n"
    'sim = ["driver"]\n'
    'harness = ["out"]\n'
    "\n"
    "[taint]\n"
    'sink_modules = ["out"]\n'
    'sanitizers = ["quantize"]\n'
)

_DRIVER = (
    "import time\n"
    "\n"
    "from out import record\n"
    "\n"
    "\n"
    "def quantize(value):\n"
    "    return value\n"
    "\n"
    "\n"
    "def flow():\n"
    "    t0 = time.time()\n"
    "    record(quantize(t0))\n"
)

_OUT = "def record(payload):\n    return dict(payload)\n"


def _stage(tmp_path: Path, layer_map: str) -> Path:
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "layers.toml").write_text(layer_map)
    (tree / "driver.py").write_text(_DRIVER)
    (tree / "out.py").write_text(_OUT)
    return tree


class TestSanitizers:
    def test_declared_sanitizer_kills_propagated_taint(self, tmp_path):
        # quantize() returns its argument, so the summary machinery
        # would propagate the wall-clock taint straight into the sink —
        # unless the layers.toml declaration makes quantize a sanitizer.
        tree = _stage(tmp_path, _SANITIZER_MAP)
        assert lint_paths([str(tree)], select=["R018"]).findings == []

    def test_removing_declaration_resurfaces_flow(self, tmp_path):
        undeclared = _SANITIZER_MAP.replace('sanitizers = ["quantize"]\n', "")
        tree = _stage(tmp_path, undeclared)
        result = lint_paths([str(tree)], select=["R018"])
        assert [f.rule_id for f in result.findings] == ["R018"]
        sink_line = 1 + _DRIVER[: _DRIVER.index("record(quantize")].count("\n")
        assert result.findings[0].line == sink_line
        assert "wall-clock read" in result.findings[0].message

    def test_no_taint_section_means_silent(self, tmp_path):
        # Sound-by-omission: the same flow with no [taint] section in
        # the governing map produces nothing.
        plain = "[layers]\n" 'sim = ["driver", "out"]\n'
        tree = _stage(tmp_path, plain)
        assert lint_paths([str(tree)], select=["R018"]).findings == []


class TestResultMutationRegression:
    """Acceptance criterion: a wall-clock-derived value flowed into a
    result dict in a copy of the real tree fires R018 at the edited
    line."""

    _MAP = (
        "[layers]\n"
        'harness = ["harness"]\n'
        "\n"
        "[taint]\n"
        'sink_modules = ["harness.result"]\n'
    )

    _SHIM = (
        "\n"
        "\n"
        "import time\n"
        "\n"
        "\n"
        "def finalize(payload):\n"
        '    payload["written_at"] = time.time()\n'
        "    return payload\n"
    )

    def _stage(self, root: Path, source: str) -> Path:
        root.mkdir(parents=True, exist_ok=True)
        (root / "layers.toml").write_text(self._MAP)
        target_dir = root / "harness"
        target_dir.mkdir()
        (target_dir / "result.py").write_text(source)
        return target_dir

    def test_wall_clock_into_result_dict_fails_at_line(self, tmp_path):
        source = (REPO_ROOT / "src/repro/harness/result.py").read_text()
        clean_dir = self._stage(tmp_path / "clean", source)
        assert lint_paths([str(clean_dir)], select=["R018"]).findings == []

        mutated = source + self._SHIM
        bad = 'payload["written_at"] = time.time()'
        bad_dir = self._stage(tmp_path / "bad", mutated)
        result = lint_paths([str(bad_dir)], select=["R018"])
        assert [f.rule_id for f in result.findings] == ["R018"]
        finding = result.findings[0]
        bad_line = 1 + mutated[: mutated.index(bad)].count("\n")
        assert finding.line == bad_line
        assert "wall-clock read" in finding.message
        assert "harness.result" in finding.message

"""Deterministic asyncio tests for the live TCP front door.

Every test here runs the real LiveServer over real localhost TCP, but
on a FakeClock: model time only moves when the test advances it, so
entire query lifecycles — admission, degree grant, service phases,
completion, shedding — execute without a single real sleep. The only
wall time spent is socket readiness, which the event loop wakes on
immediately. ``asyncio.wait_for`` bounds are failure backstops, not
pacing.
"""

import asyncio
import json

import numpy as np

from repro.engine.query import Query
from repro.errors import SimulationError
from repro.policies.fixed import FixedPolicy, SequentialPolicy
from repro.profiles.measurement import QueryCostTable
from repro.runtime.clock import FakeClock
from repro.runtime.node import QueryOutcome, ServingConfig, ServingNode
from repro.runtime.serve import AsyncioScheduler, LiveServer
from repro.sim.oracle import ServiceOracle

#: Failure backstop for awaited reads in these tests (wall seconds);
#: the normal path resolves on the same loop iteration the server
#: writes its reply.
_IO_S = 20.0


def _table(t1s=(1.0,) * 6, degrees=(1, 2, 4), speedup=None):
    """Cost table with per-query sequential latencies ``t1s``."""
    speedup = speedup or {1: 1.0, 2: 1.8, 4: 3.0}
    t1 = np.asarray(t1s, dtype=np.float64)
    latency = np.stack([t1 / speedup[p] for p in degrees], axis=1)
    cpu = latency * np.asarray(degrees)[None, :]
    chunks = np.ones((len(t1s), len(degrees)), dtype=np.int64)
    queries = [Query.of([0], query_id=i) for i in range(len(t1s))]
    return QueryCostTable(queries, degrees, latency, cpu, chunks)


def _node(clock, policy=None, table=None, engine_search=None, **config):
    config.setdefault("n_cores", 4)
    config.setdefault("horizon_s", 1000.0)
    return ServingNode(
        clock,
        ServiceOracle(table if table is not None else _table()),
        policy if policy is not None else FixedPolicy(2),
        ServingConfig(**config),
        engine_search=engine_search,
    )


async def _yield_until(predicate, rounds=2000):
    """Spin the event loop (zero-delay yields only) until ``predicate``
    holds; returns whether it ever did."""
    for _ in range(rounds):
        if predicate():
            return True
        await asyncio.sleep(0)
    return predicate()


class _Client:
    """Line-oriented JSON client for one test connection."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, port):
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection("127.0.0.1", port), timeout=_IO_S
        )
        return cls(reader, writer)

    async def send(self, payload):
        if isinstance(payload, (bytes, bytearray)):
            self.writer.write(bytes(payload))
        else:
            self.writer.write((json.dumps(payload) + "\n").encode("utf-8"))
        await asyncio.wait_for(self.writer.drain(), timeout=_IO_S)

    async def recv(self):
        line = await asyncio.wait_for(self.reader.readline(), timeout=_IO_S)
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    async def ask(self, payload):
        await self.send(payload)
        return await self.recv()

    async def close(self):
        self.writer.close()
        try:
            await asyncio.wait_for(self.writer.wait_closed(), timeout=_IO_S)
        except (asyncio.TimeoutError, OSError):
            pass


async def _boot(node, **server_kwargs):
    server_kwargs.setdefault("request_budget_s", 100_000.0)
    service = LiveServer(node, **server_kwargs)
    serve_task = asyncio.get_running_loop().create_task(service.serve("127.0.0.1", 0))
    port = await service.wait_ready()
    return service, serve_task, port


async def _shutdown(service, serve_task, *clients):
    for client in clients:
        await client.close()
    service.request_shutdown()
    await asyncio.wait_for(serve_task, timeout=_IO_S)


class TestControlOps:
    def test_ping_reports_fake_time(self):
        async def scenario():
            clock = FakeClock(start_s=3.5)
            service, serve_task, port = await _boot(_node(clock))
            client = await _Client.connect(port)
            reply = await client.ask({"id": 1, "op": "ping"})
            assert reply == {"id": 1, "ok": True, "op": "ping", "now_s": 3.5}
            await _shutdown(service, serve_task, client)

        asyncio.run(scenario())

    def test_stats_counters_and_summary(self):
        async def scenario():
            clock = FakeClock()
            node = _node(clock)
            service, serve_task, port = await _boot(node)
            client = await _Client.connect(port)
            reply = await client.ask({"id": 2, "op": "stats"})
            assert reply["ok"] and reply["op"] == "stats"
            assert reply["n_queries"] == 6
            assert reply["n_cores"] == 4
            assert reply["policy"] == "fixed-2"
            assert reply["n_answered"] == 0
            assert "summary" not in reply
            reply = await client.ask({"id": 3, "op": "stats", "rate": 5.0})
            assert reply["summary"]["policy"] == "fixed-2"
            assert reply["summary"]["rate"] == 5.0
            await _shutdown(service, serve_task, client)

        asyncio.run(scenario())

    def test_shutdown_op_stops_serving(self):
        async def scenario():
            clock = FakeClock()
            service, serve_task, port = await _boot(_node(clock))
            client = await _Client.connect(port)
            reply = await client.ask({"id": 4, "op": "shutdown"})
            assert reply["ok"]
            await client.close()
            await asyncio.wait_for(serve_task, timeout=_IO_S)

        asyncio.run(scenario())


class TestBadRequests:
    def test_bad_json_unknown_op_bad_index_bad_budget(self):
        async def scenario():
            clock = FakeClock()
            service, serve_task, port = await _boot(_node(clock))
            client = await _Client.connect(port)

            reply = await client.ask(b"this is not json\n")
            assert reply == {"id": None, "ok": False, "error": "bad-json"}

            reply = await client.ask(b"[1, 2, 3]\n")
            assert reply["error"] == "bad-json"

            reply = await client.ask({"id": 5, "op": "frobnicate"})
            assert not reply["ok"] and "unknown-op" in reply["error"]

            reply = await client.ask({"id": 6, "op": "search", "query_index": 99})
            assert not reply["ok"] and "bad-query-index" in reply["error"]

            reply = await client.ask({"id": 7, "op": "search"})
            assert not reply["ok"] and "bad-query-index" in reply["error"]

            reply = await client.ask(
                {"id": 8, "op": "search", "query_index": 0, "budget_s": -1}
            )
            assert reply == {"id": 8, "ok": False, "error": "bad-budget"}
            await _shutdown(service, serve_task, client)

        asyncio.run(scenario())


class TestSearchLifecycle:
    def test_search_completes_when_clock_advances(self):
        async def scenario():
            clock = FakeClock()
            node = _node(clock)
            service, serve_task, port = await _boot(node)
            client = await _Client.connect(port)
            await client.send({"id": 10, "op": "search", "query_index": 1})
            # The query is dispatched once the server task runs; its
            # service phases live on the FakeClock.
            assert await _yield_until(lambda: clock.pending > 0)
            assert node.server.n_running == 1
            clock.drain()
            reply = await client.recv()
            assert reply["id"] == 10 and reply["ok"]
            assert reply["status"] == "completed"
            assert reply["query_index"] == 1
            assert reply["degree"] == 2
            # Constant table: t1=1.0 at degree 2 with speedup 1.8.
            assert abs(reply["latency_s"] - 1.0 / 1.8) < 1e-9
            assert node.n_answered == 1
            await _shutdown(service, serve_task, client)

        asyncio.run(scenario())

    def test_replies_out_of_order_across_queries(self):
        """Each search is its own task: a fast query submitted second
        must answer first, keyed by request id."""
        async def scenario():
            clock = FakeClock()
            node = _node(clock, policy=SequentialPolicy(),
                         table=_table(t1s=(5.0, 1.0)))
            service, serve_task, port = await _boot(node)
            client = await _Client.connect(port)
            await client.send({"id": "slow", "op": "search", "query_index": 0})
            await client.send({"id": "fast", "op": "search", "query_index": 1})
            assert await _yield_until(lambda: node.server.n_running == 2)
            clock.drain()
            first = await client.recv()
            second = await client.recv()
            assert [first["id"], second["id"]] == ["fast", "slow"]
            assert first["latency_s"] == 1.0
            assert second["latency_s"] == 5.0
            await _shutdown(service, serve_task, client)

        asyncio.run(scenario())

    def test_admission_shed_replies_without_clock_advance(self):
        async def scenario():
            clock = FakeClock()
            node = _node(clock, policy=SequentialPolicy(), n_cores=1,
                         max_queue_length=1)
            service, serve_task, port = await _boot(node)
            client = await _Client.connect(port)
            for i in range(3):
                await client.send(
                    {"id": i, "op": "search", "query_index": 0}
                )
            # Third query: one running, one queued, queue cap 1 -> shed
            # synchronously at admission; its reply needs no time.
            reply = await client.recv()
            assert reply["id"] == 2
            assert reply["status"] == "shed"
            assert reply["shed_reason"]
            assert clock.now == 0.0  # reprolint: disable=R004 -- shed must happen synchronously, before any clock advance
            clock.drain()
            replies = [await client.recv(), await client.recv()]
            assert sorted(r["id"] for r in replies) == [0, 1]
            assert all(r["status"] == "completed" for r in replies)
            await _shutdown(service, serve_task, client)

        asyncio.run(scenario())

    def test_request_budget_timeout(self):
        async def scenario():
            clock = FakeClock()
            node = _node(clock)
            service, serve_task, port = await _boot(node)
            client = await _Client.connect(port)
            # Tiny budget, never advance the clock: the wall wait_for
            # expires on the next loop pass.
            reply = await client.ask(
                {"id": 11, "op": "search", "query_index": 0, "budget_s": 1e-9}
            )
            assert reply == {"id": 11, "ok": False, "error": "timeout"}
            await _shutdown(service, serve_task, client)

        asyncio.run(scenario())

    def test_engine_results_round_trip(self):
        calls = []

        def fake_search(query_index, degree):
            calls.append((query_index, degree))
            return ((17, 0.9), (4, 0.5))

        async def scenario():
            clock = FakeClock()
            node = _node(clock, engine_search=fake_search)
            service, serve_task, port = await _boot(node)
            client = await _Client.connect(port)
            await client.send({"id": 12, "op": "search", "query_index": 3})
            assert await _yield_until(lambda: clock.pending > 0)
            clock.drain()
            reply = await client.recv()
            assert reply["results"] == [[17, 0.9], [4, 0.5]]
            assert calls == [(3, 2)]
            await _shutdown(service, serve_task, client)

        asyncio.run(scenario())

    def test_two_connections_counted_once(self):
        async def scenario():
            clock = FakeClock()
            node = _node(clock)
            service, serve_task, port = await _boot(node)
            a = await _Client.connect(port)
            b = await _Client.connect(port)
            await a.send({"id": 1, "op": "search", "query_index": 0})
            await b.send({"id": 2, "op": "search", "query_index": 1})
            assert await _yield_until(lambda: node.server.n_running == 2)
            clock.drain()
            ra = await a.recv()
            rb = await b.recv()
            assert ra["id"] == 1 and rb["id"] == 2
            assert node.n_answered == 2
            await _shutdown(service, serve_task, a, b)

        asyncio.run(scenario())


class TestNodeDirect:
    def test_on_done_fires_exactly_once(self):
        clock = FakeClock()
        node = _node(clock)
        outcomes = []
        node.submit(0, on_done=outcomes.append)
        assert outcomes == []
        clock.drain()
        assert len(outcomes) == 1
        outcome = outcomes[0]
        assert isinstance(outcome, QueryOutcome)
        assert outcome.status == "completed"
        assert outcome.latency_s == outcome.finished_s - outcome.arrival_s

    def test_shed_outcome_synchronous(self):
        clock = FakeClock()
        node = _node(clock, policy=SequentialPolicy(), n_cores=1,
                     max_queue_length=1)
        outcomes = []
        for _ in range(3):
            node.submit(0, on_done=outcomes.append)
        assert [o.status for o in outcomes] == ["shed"]
        assert outcomes[0].shed_reason
        clock.drain()
        assert sorted(o.status for o in outcomes) == [
            "completed", "completed", "shed"
        ]

    def test_summary_uses_shared_schema(self):
        clock = FakeClock()
        node = _node(clock, warmup_s=0.0, horizon_s=10.0)
        node.submit(0)
        node.submit(1)
        clock.drain()
        summary = node.summary(rate=2.0)
        assert summary.observed == 2
        assert summary.policy == "fixed-2"
        assert summary.n_cores == 4


class TestAsyncioScheduler:
    def test_now_advances_with_loop(self):
        async def scenario():
            scheduler = AsyncioScheduler()
            assert scheduler.now >= 0.0
            fired = []
            scheduler.schedule(0.0, lambda: fired.append(scheduler.now))
            assert await _yield_until(lambda: fired)
            assert fired[0] >= 0.0

        asyncio.run(scenario())

    def test_dilation_converts_model_to_wall(self):
        async def scenario():
            scheduler = AsyncioScheduler(dilation=20.0)
            assert scheduler.to_wall(2.0) == 40.0
            assert scheduler.dilation == 20.0

        asyncio.run(scenario())

    def test_negative_delay_rejected(self):
        async def scenario():
            scheduler = AsyncioScheduler()
            try:
                scheduler.schedule(-0.5, lambda: None)
            except SimulationError:
                return True
            return False

        assert asyncio.run(scenario())

"""Tests for the closed-loop workload runner."""

import numpy as np
import pytest

from repro.engine.query import Query
from repro.policies.fixed import SequentialPolicy
from repro.profiles.measurement import QueryCostTable
from repro.sim.closedloop import ClosedLoopConfig, run_closed_loop_point
from repro.sim.oracle import ServiceOracle


def _oracle(n=500, mean=0.002, seed=0):
    rng = np.random.default_rng(seed)
    latencies = rng.exponential(mean, size=n).reshape(n, 1)
    latencies *= mean / latencies.mean()
    table = QueryCostTable(
        [Query.of([0], query_id=i) for i in range(n)],
        (1,),
        latencies,
        latencies.copy(),
        np.ones((n, 1), dtype=np.int64),
    )
    return ServiceOracle(table)


class TestClosedLoop:
    def test_throughput_bounded_by_client_cycle(self):
        """Little's law: throughput <= N / (think + service)."""
        oracle = _oracle()
        config = ClosedLoopConfig(n_clients=8, think_time=0.01,
                                  duration=20.0, warmup=2.0, n_cores=4, seed=1)
        summary = run_closed_loop_point(oracle, SequentialPolicy(), config)
        bound = config.n_clients / (config.think_time + 0.002)
        assert 0 < summary.throughput <= bound * 1.05

    def test_single_client_never_queues(self):
        oracle = _oracle()
        config = ClosedLoopConfig(n_clients=1, think_time=0.005,
                                  duration=10.0, warmup=1.0, n_cores=4, seed=2)
        summary = run_closed_loop_point(oracle, SequentialPolicy(), config)
        assert summary.mean_queue_delay == pytest.approx(0.0, abs=1e-12)

    def test_saturation_self_throttles(self):
        """Unlike open loop, a huge population yields ~full utilization
        with finite latency (each client waits its turn)."""
        oracle = _oracle()
        config = ClosedLoopConfig(n_clients=200, think_time=0.0001,
                                  duration=10.0, warmup=2.0, n_cores=4, seed=3)
        summary = run_closed_loop_point(oracle, SequentialPolicy(), config)
        assert summary.utilization > 0.9
        assert np.isfinite(summary.p99_latency)

    def test_more_clients_more_throughput_until_saturation(self):
        oracle = _oracle()
        throughputs = []
        for n_clients in (2, 8, 64):
            config = ClosedLoopConfig(n_clients=n_clients, think_time=0.002,
                                      duration=10.0, warmup=2.0, n_cores=4,
                                      seed=4)
            throughputs.append(
                run_closed_loop_point(oracle, SequentialPolicy(), config).throughput
            )
        assert throughputs[0] < throughputs[1] <= throughputs[2] * 1.05

    def test_reproducible(self):
        oracle = _oracle()
        config = ClosedLoopConfig(n_clients=6, think_time=0.003,
                                  duration=5.0, warmup=1.0, n_cores=4, seed=5)
        a = run_closed_loop_point(oracle, SequentialPolicy(), config)
        b = run_closed_loop_point(oracle, SequentialPolicy(), config)
        assert a.p99_latency == b.p99_latency  # reprolint: disable=R004 -- bit-identical replay is the property under test

    def test_invalid_config_rejected(self):
        with pytest.raises(Exception):
            ClosedLoopConfig(n_clients=0)
        with pytest.raises(Exception):
            ClosedLoopConfig(think_time=-1.0)

"""R019 deadline-propagation tests beyond the generic fixture harness.

``test_reprolint.py`` pins the r019_deadlines fixture's exact finding
lines and suppression; here we check the scoping contract and run the
acceptance-criteria mutation regression: an async serving shim grafted
onto a copy of the real ``runtime/clock.py`` with an unbounded await
and a swallowed ``CancelledError`` fires R019 at exactly those lines —
the gate the future live-serving PR must pass.
"""

from __future__ import annotations

from pathlib import Path

from tools.reprolint import lint_paths

from test_reprolint import REPO_ROOT

_RUNTIME_MAP = (
    "[layers]\n"
    'runtime = ["runtime"]\n'
    "\n"
    "[deadlines]\n"
    'layers = ["runtime"]\n'
)

_SERVE_SHIM = (
    "\n"
    "\n"
    "import asyncio\n"
    "\n"
    "\n"
    "async def serve(reader, writer, deadline_s):\n"
    "    payload = await reader.read(65536)\n"
    "    try:\n"
    "        writer.write(payload)\n"
    "        await asyncio.wait_for(writer.drain(), timeout=deadline_s)\n"
    "    except BaseException:\n"
    "        pass\n"
)


def _stage(root: Path, source: str, layer_map: str = _RUNTIME_MAP) -> Path:
    root.mkdir(parents=True, exist_ok=True)
    (root / "layers.toml").write_text(layer_map)
    target_dir = root / "runtime"
    target_dir.mkdir()
    (target_dir / "clock.py").write_text(source)
    return target_dir


class TestRuntimeMutationRegression:
    def test_real_runtime_clock_is_clean(self, tmp_path):
        source = (REPO_ROOT / "src/repro/runtime/clock.py").read_text()
        clean_dir = _stage(tmp_path / "clean", source)
        assert lint_paths([str(clean_dir)], select=["R019"]).findings == []

    def test_unbounded_await_and_swallowed_cancel_fail_at_lines(self, tmp_path):
        source = (REPO_ROOT / "src/repro/runtime/clock.py").read_text()
        mutated = source + _SERVE_SHIM
        bad_dir = _stage(tmp_path / "bad", mutated)
        result = lint_paths([str(bad_dir)], select=["R019"])
        assert [f.rule_id for f in result.findings] == ["R019", "R019"]
        await_line = 1 + mutated[: mutated.index("await reader.read")].count("\n")
        except_line = 1 + mutated[: mutated.index("except BaseException")].count(
            "\n"
        )
        assert sorted(f.line for f in result.findings) == sorted(
            [await_line, except_line]
        )
        messages = {f.line: f.message for f in result.findings}
        assert "no deadline bound" in messages[await_line]
        assert "CancelledError" in messages[except_line]

    def test_no_deadlines_section_means_silent(self, tmp_path):
        # Sound-by-omission: the same shim under a map without a
        # [deadlines] section produces nothing.
        source = (REPO_ROOT / "src/repro/runtime/clock.py").read_text()
        plain = "[layers]\n" 'runtime = ["runtime"]\n'
        bad_dir = _stage(tmp_path / "bad", source + _SERVE_SHIM, plain)
        assert lint_paths([str(bad_dir)], select=["R019"]).findings == []

    def test_non_deadline_layer_exempt(self, tmp_path):
        # The shim in a module mapped to a layer NOT listed under
        # [deadlines] layers is out of scope.
        source = (REPO_ROOT / "src/repro/runtime/clock.py").read_text()
        sim_map = (
            "[layers]\n"
            'sim = ["runtime"]\n'
            "\n"
            "[deadlines]\n"
            'layers = ["serving"]\n'
        )
        bad_dir = _stage(tmp_path / "bad", source + _SERVE_SHIM, sim_map)
        assert lint_paths([str(bad_dir)], select=["R019"]).findings == []

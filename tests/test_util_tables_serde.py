"""Tests for table rendering and JSON serialization."""

import dataclasses
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.util.serde import dump_json, dumps, load_json, to_jsonable
from repro.util.tables import Table, format_float


class TestFormatFloat:
    def test_int_has_no_decimal(self):
        assert format_float(12) == "12"

    def test_float_digits(self):
        assert format_float(1.23456, digits=2) == "1.23"

    def test_tiny_uses_scientific(self):
        assert "e" in format_float(1e-7)

    def test_huge_uses_scientific(self):
        assert "e" in format_float(5e8)

    def test_zero(self):
        assert format_float(0.0) == "0"

    def test_nan(self):
        assert format_float(float("nan")) == "nan"

    def test_bool_renders_as_word(self):
        assert format_float(True) == "True"

    def test_string_passthrough(self):
        assert format_float("abc") == "abc"


class TestTable:
    def test_render_alignment(self):
        table = Table(["a", "bb"], title="T")
        table.add_row([1, 2.5])
        rendered = table.render()
        assert rendered.splitlines()[0] == "T"
        assert "2.500" in rendered

    def test_row_width_mismatch_rejected(self):
        table = Table(["a"])
        with pytest.raises(ConfigurationError):
            table.add_row([1, 2])

    def test_no_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            Table([])

    def test_add_rows_and_records(self):
        table = Table(["x", "y"])
        table.add_rows([[1, 2], [3, 4]])
        assert table.n_rows == 2
        assert table.as_records()[1] == {"x": "3", "y": "4"}


@dataclasses.dataclass
class _Point:
    x: int
    y: float


class TestSerde:
    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.float64(2.5)) == 2.5
        assert to_jsonable(np.bool_(True)) is True

    def test_numpy_array(self):
        assert to_jsonable(np.arange(3)) == [0, 1, 2]

    def test_dataclass(self):
        assert to_jsonable(_Point(1, 2.0)) == {"x": 1, "y": 2.0}

    def test_nested_containers(self):
        obj = {"a": [np.int32(1), (2, 3)], "b": {4}}
        out = to_jsonable(obj)
        assert out["a"] == [1, [2, 3]]
        assert out["b"] == [4]

    def test_unserializable_rejected(self):
        with pytest.raises(ConfigurationError):
            to_jsonable(object())

    def test_roundtrip_file(self, tmp_path: Path):
        path = dump_json({"k": np.float64(1.5)}, tmp_path / "out.json")
        assert load_json(path) == {"k": 1.5}

    def test_dumps_sorted_keys(self):
        assert dumps({"b": 1, "a": 2}).index('"a"') < dumps({"b": 1, "a": 2}).index('"b"')

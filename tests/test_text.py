"""Tests for repro.text: Zipf sampler, vocabulary, tokenizer."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.text.tokenizer import Tokenizer
from repro.text.vocabulary import Vocabulary
from repro.text.zipf import ZipfMandelbrot


class TestZipfMandelbrot:
    def test_pmf_sums_to_one(self):
        z = ZipfMandelbrot(1000, 1.1, 2.0)
        assert np.isclose(z.pmf_array().sum(), 1.0)

    def test_pmf_is_decreasing_in_rank(self):
        z = ZipfMandelbrot(500)
        pmf = z.pmf_array()
        assert np.all(np.diff(pmf) <= 0)

    def test_head_mass_monotone(self):
        z = ZipfMandelbrot(100)
        assert z.head_mass(10) < z.head_mass(50) <= z.head_mass(100) == pytest.approx(1.0)

    def test_samples_in_support(self, rng):
        z = ZipfMandelbrot(50)
        draws = z.sample(rng, 2000)
        assert draws.min() >= 0 and draws.max() < 50

    def test_scalar_sample(self, rng):
        z = ZipfMandelbrot(50)
        value = z.sample(rng)
        assert isinstance(value, int) and 0 <= value < 50

    def test_empirical_matches_pmf_at_head(self, rng):
        z = ZipfMandelbrot(200, 1.05, 2.0)
        draws = z.sample(rng, 60_000)
        empirical_top = float((draws == 0).mean())
        assert abs(empirical_top - z.pmf(0)) < 0.01

    def test_higher_exponent_is_more_skewed(self):
        flat = ZipfMandelbrot(100, exponent=0.5, shift=0.0)
        steep = ZipfMandelbrot(100, exponent=2.0, shift=0.0)
        assert steep.pmf(0) > flat.pmf(0)

    def test_expected_rank_finite_and_positive(self):
        z = ZipfMandelbrot(100)
        assert 0 < z.expected_rank() < 100

    def test_bad_params_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfMandelbrot(0)
        with pytest.raises(ConfigurationError):
            ZipfMandelbrot(10, exponent=0.0)
        with pytest.raises(ConfigurationError):
            ZipfMandelbrot(10, shift=-1.0)

    def test_pmf_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfMandelbrot(10).pmf(10)


class TestVocabulary:
    def test_word_is_deterministic(self):
        v = Vocabulary(100)
        assert v.word(7) == v.word(7)

    def test_roundtrip(self):
        v = Vocabulary(1000)
        for term_id in (0, 1, 17, 999):
            assert v.term_id(v.word(term_id)) == term_id

    def test_distinct_ids_distinct_words(self):
        v = Vocabulary(5000)
        words = {v.word(i) for i in range(5000)}
        assert len(words) == 5000

    def test_unknown_word_rejected(self):
        with pytest.raises(ConfigurationError):
            Vocabulary(10).term_id("nonexistent")

    def test_out_of_range_id_rejected(self):
        with pytest.raises(ConfigurationError):
            Vocabulary(10).word(10)

    def test_contains(self):
        v = Vocabulary(3)
        assert 2 in v and 3 not in v


class TestTokenizer:
    def test_lowercases_and_splits(self):
        assert Tokenizer(stopwords=frozenset()).tokenize("Hello WORLD") == [
            "hello", "world"]

    def test_strips_punctuation(self):
        assert Tokenizer(stopwords=frozenset()).tokenize("web-search, now!") == [
            "web", "search", "now"]

    def test_drops_stopwords(self):
        assert Tokenizer().tokenize("the cat and the hat") == ["cat", "hat"]

    def test_min_token_length(self):
        assert Tokenizer(stopwords=frozenset(), min_token_length=3).tokenize(
            "go for it now") == ["for", "now"]

    def test_to_term_ids_skips_unknown(self):
        vocabulary = Vocabulary(100)
        known = vocabulary.word(5)
        tokenizer = Tokenizer(stopwords=frozenset())
        ids = tokenizer.to_term_ids(f"{known} zzzzunknown", vocabulary)
        assert ids == [5]

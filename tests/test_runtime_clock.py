"""Tests for the runtime clocks: FakeClock semantics and WallClock."""

import pytest

from repro.core.clock import ClockProtocol, SchedulerProtocol
from repro.errors import SimulationError
from repro.runtime.clock import FakeClock, WallClock


class TestProtocolConformance:
    def test_fake_clock_is_a_scheduler(self):
        clock = FakeClock()
        assert isinstance(clock, ClockProtocol)
        assert isinstance(clock, SchedulerProtocol)

    def test_wall_clock_is_a_clock(self):
        assert isinstance(WallClock(), ClockProtocol)

    def test_wall_clock_monotone(self):
        clock = WallClock()
        a = clock.now
        b = clock.now
        assert 0 <= a <= b


class TestFakeClockScheduling:
    def test_starts_at_zero_and_idle(self):
        clock = FakeClock()
        assert clock.now == 0.0  # reprolint: disable=R004 -- FakeClock time is assigned, never accumulated; exactness is the contract
        assert clock.pending == 0
        assert clock.next_event_s() is None

    def test_fires_in_time_order(self):
        clock = FakeClock()
        fired = []
        clock.schedule(2.0, lambda: fired.append("b"))
        clock.schedule(1.0, lambda: fired.append("a"))
        clock.schedule(3.0, lambda: fired.append("c"))
        assert clock.advance_to(10.0) == 3
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_submission_order(self):
        clock = FakeClock()
        fired = []
        for name in "abcd":
            clock.schedule(1.0, lambda n=name: fired.append(n))
        clock.drain()
        assert fired == ["a", "b", "c", "d"]

    def test_clock_reads_fire_time_inside_callback(self):
        clock = FakeClock()
        seen = []
        clock.schedule(1.5, lambda: seen.append(clock.now))
        clock.schedule(4.0, lambda: seen.append(clock.now))
        clock.advance_to(5.0)
        assert seen == [1.5, 4.0]
        assert clock.now == 5.0  # reprolint: disable=R004 -- advance_to sets now to the target exactly

    def test_boundary_events_fire(self):
        # Events scheduled exactly at the advance target fire — the
        # same `<=` convention as Simulator.run(until_s).
        clock = FakeClock()
        fired = []
        clock.schedule(2.0, lambda: fired.append("edge"))
        assert clock.advance_to(2.0) == 1
        assert fired == ["edge"]

    def test_callbacks_can_schedule_callbacks(self):
        clock = FakeClock()
        fired = []

        def first():
            fired.append(("first", clock.now))
            clock.schedule(1.0, lambda: fired.append(("second", clock.now)))

        clock.schedule(1.0, first)
        # The chained callback is due inside the same advance window.
        assert clock.advance_to(3.0) == 2
        assert fired == [("first", 1.0), ("second", 2.0)]

    def test_advance_by_and_counts(self):
        clock = FakeClock(start_s=5.0)
        clock.schedule(1.0, lambda: None)
        clock.schedule(4.0, lambda: None)
        assert clock.advance_by(2.0) == 1
        assert clock.now == 7.0  # reprolint: disable=R004 -- advance_by lands on start + delta exactly
        assert clock.pending == 1
        assert clock.next_event_s() == pytest.approx(9.0)

    def test_schedule_at_absolute(self):
        clock = FakeClock()
        fired = []
        clock.schedule_at(3.0, lambda: fired.append(clock.now))
        clock.drain()
        assert fired == [3.0]
        assert clock.now == 3.0  # reprolint: disable=R004 -- drain leaves now at the last fire time exactly


class TestFakeClockErrors:
    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            FakeClock().schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        clock = FakeClock(start_s=10.0)
        with pytest.raises(SimulationError):
            clock.schedule_at(9.0, lambda: None)

    def test_advance_backwards_rejected(self):
        clock = FakeClock(start_s=2.0)
        with pytest.raises(SimulationError):
            clock.advance_to(1.0)

    def test_negative_advance_by_rejected(self):
        with pytest.raises(SimulationError):
            FakeClock().advance_by(-1.0)

    def test_drain_bounds_runaway_reschedule(self):
        clock = FakeClock()

        def reschedule():
            clock.schedule(1.0, reschedule)

        clock.schedule(1.0, reschedule)
        with pytest.raises(SimulationError):
            clock.drain(max_events=100)

    def test_drain_returns_total_fired(self):
        clock = FakeClock()
        for i in range(5):
            clock.schedule(float(i), lambda: None)
        assert clock.drain() == 5
        assert clock.pending == 0

"""Tests for the fault-injection schedules (repro.sim.faults)."""

import pytest

from repro.errors import FaultInjectionError
from repro.sim.faults import (
    CRASH,
    ClusterFaultPlan,
    FaultSchedule,
    FaultWindow,
)


class TestFaultWindow:
    def test_slowdown_window(self):
        window = FaultWindow(1.0, 2.0, 3.0)
        assert not window.is_crash

    def test_crash_window(self):
        assert FaultWindow(0.0, 1.0).is_crash
        assert FaultWindow(0.0, 1.0, CRASH).is_crash

    def test_invalid_bounds_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultWindow(2.0, 1.0, 2.0)
        with pytest.raises(FaultInjectionError):
            FaultWindow(-1.0, 1.0, 2.0)
        with pytest.raises(FaultInjectionError):
            FaultWindow(0.0, 1.0, 0.0)
        with pytest.raises(FaultInjectionError):
            FaultWindow(0.0, 1.0, -2.0)


class TestFaultSchedule:
    def test_multiplier_lookup(self):
        schedule = FaultSchedule.slowdown(1.0, 2.0, 4.0)
        assert schedule.multiplier_at(0.5) == 1.0
        assert schedule.multiplier_at(1.0) == 4.0
        assert schedule.multiplier_at(1.999) == 4.0
        assert schedule.multiplier_at(2.0) == 1.0  # end-exclusive
        assert not schedule.crashed_at(1.5)

    def test_crash_lookup(self):
        schedule = FaultSchedule.crash(1.0, 2.0)
        assert schedule.crashed_at(1.5)
        assert not schedule.crashed_at(2.0)
        # A crashed machine is not "slow"; it is gone.
        assert schedule.multiplier_at(1.5) == 1.0

    def test_windows_sorted_and_disjoint(self):
        schedule = FaultSchedule(
            [FaultWindow(3.0, 4.0, 2.0), FaultWindow(1.0, 2.0, 5.0)]
        )
        assert [w.start for w in schedule.windows] == [1.0, 3.0]
        assert schedule.multiplier_at(3.5) == 2.0

    def test_overlap_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule([FaultWindow(0.0, 2.0, 2.0), FaultWindow(1.0, 3.0, 2.0)])

    def test_abutting_windows_allowed(self):
        schedule = FaultSchedule(
            [FaultWindow(0.0, 1.0, 2.0), FaultWindow(1.0, 2.0, 3.0)]
        )
        assert schedule.multiplier_at(0.5) == 2.0
        assert schedule.multiplier_at(1.0) == 3.0

    def test_empty_schedule_is_healthy(self):
        schedule = FaultSchedule()
        assert not schedule.has_faults
        assert schedule.multiplier_at(10.0) == 1.0
        assert not schedule.crashed_at(10.0)


class TestClusterFaultPlan:
    def test_slow_shard_plan(self):
        plan = ClusterFaultPlan.slow_shard(2, 0.0, 5.0, 3.0)
        assert plan.schedule_for(2).multiplier_at(1.0) == 3.0
        assert plan.schedule_for(0) is None
        assert plan.has_faults

    def test_type_checked(self):
        with pytest.raises(FaultInjectionError):
            ClusterFaultPlan({0: [FaultWindow(0.0, 1.0, 2.0)]})

    def test_generate_deterministic(self):
        a = ClusterFaultPlan.generate(
            7, n_shards=8, duration=20.0, slowdown_rate=0.2, crash_rate=0.1
        )
        b = ClusterFaultPlan.generate(
            7, n_shards=8, duration=20.0, slowdown_rate=0.2, crash_rate=0.1
        )
        assert sorted(a.schedules) == sorted(b.schedules)
        for shard_id, schedule in a.schedules.items():
            assert schedule.windows == b.schedules[shard_id].windows

    def test_generate_schedules_valid_and_bounded(self):
        plan = ClusterFaultPlan.generate(
            3, n_shards=6, duration=10.0, slowdown_rate=0.5, crash_rate=0.3,
            multiplier_range=(2.0, 4.0),
        )
        for schedule in plan.schedules.values():
            for window in schedule.windows:
                assert 0.0 <= window.start < window.end <= 10.0
                if not window.is_crash:
                    assert 2.0 <= window.multiplier <= 4.0

    def test_generate_zero_rates_is_empty(self):
        plan = ClusterFaultPlan.generate(0, n_shards=4, duration=10.0)
        assert not plan.has_faults

    def test_generate_validates(self):
        with pytest.raises(FaultInjectionError):
            ClusterFaultPlan.generate(0, n_shards=0, duration=10.0)
        with pytest.raises(FaultInjectionError):
            ClusterFaultPlan.generate(0, n_shards=2, duration=10.0,
                                      slowdown_rate=-1.0)

"""Tests for the BM25 and composite ranking components."""

import numpy as np
import pytest

from repro.ranking.bm25 import (
    BM25Params,
    bm25_idf,
    bm25_impacts,
    bm25_score_document,
    bm25_tf_component,
)
from repro.ranking.composite import CompositeScorer, ScoreWeights


class TestBM25:
    def test_idf_decreases_with_df(self):
        idf = bm25_idf(np.asarray([1, 10, 100, 1000]), n_docs=1000)
        assert np.all(np.diff(idf) < 0)

    def test_idf_positive(self):
        idf = bm25_idf(np.asarray([999]), n_docs=1000)
        assert idf[0] > 0

    def test_tf_saturates(self):
        params = BM25Params()
        tf = bm25_tf_component(
            np.asarray([1, 2, 4, 16, 256]), np.full(5, 100.0), 100.0, params
        )
        assert np.all(np.diff(tf) > 0)  # increasing...
        assert tf[-1] < params.k1 + 1.0  # ...but bounded by k1+1

    def test_length_normalization(self):
        params = BM25Params()
        short_doc = bm25_tf_component(
            np.asarray([2.0]), np.asarray([50.0]), 100.0, params
        )
        long_doc = bm25_tf_component(
            np.asarray([2.0]), np.asarray([400.0]), 100.0, params
        )
        assert short_doc[0] > long_doc[0]

    def test_b_zero_disables_length_norm(self):
        params = BM25Params(b=0.0)
        short_doc = bm25_tf_component(
            np.asarray([2.0]), np.asarray([50.0]), 100.0, params
        )
        long_doc = bm25_tf_component(
            np.asarray([2.0]), np.asarray([400.0]), 100.0, params
        )
        assert short_doc[0] == pytest.approx(long_doc[0])

    def test_impacts_equal_idf_times_tf(self):
        params = BM25Params()
        impacts = bm25_impacts(
            term_freq=np.asarray([3.0]),
            doc_length=np.asarray([120.0]),
            doc_frequency=40,
            n_docs=1000,
            avg_doc_length=100.0,
            params=params,
        )
        idf = bm25_idf(np.asarray([40]), 1000)[0]
        tf = bm25_tf_component(
            np.asarray([3.0]), np.asarray([120.0]), 100.0, params
        )[0]
        assert impacts[0] == pytest.approx(idf * tf)

    def test_reference_scorer_additive(self):
        params = BM25Params()
        single = bm25_score_document([3], [40], 120, 1000, 100.0, params)
        double = bm25_score_document([3, 3], [40, 40], 120, 1000, 100.0, params)
        assert double == pytest.approx(2 * single)

    def test_invalid_params_rejected(self):
        with pytest.raises(Exception):
            BM25Params(k1=0.0)
        with pytest.raises(Exception):
            BM25Params(b=1.5)


class TestComposite:
    def test_combine_blends_relevance_and_prior(self):
        static = np.asarray([0.9, 0.5, 0.1])
        scorer = CompositeScorer(static, ScoreWeights(1.0, 2.0))
        combined = scorer.combine(np.asarray([0, 2]), np.asarray([1.0, 1.0]))
        assert combined[0] == pytest.approx(1.0 + 2.0 * 0.9)
        assert combined[1] == pytest.approx(1.0 + 2.0 * 0.1)

    def test_prior_bound_monotone(self):
        static = np.sort(np.random.default_rng(0).random(50))[::-1]
        scorer = CompositeScorer(static, ScoreWeights())
        bounds = [scorer.max_prior_from(d) for d in range(50)]
        assert bounds == sorted(bounds, reverse=True)

    def test_prior_bound_past_end_is_zero(self):
        scorer = CompositeScorer(np.asarray([0.5]), ScoreWeights())
        assert scorer.max_prior_from(10) == 0.0

    def test_relevance_bound_sums_maxima(self):
        scorer = CompositeScorer(np.asarray([0.5]), ScoreWeights(2.0, 1.0))
        assert scorer.relevance_bound([1.0, 3.0]) == pytest.approx(8.0)

    def test_zero_static_weight_allowed(self):
        weights = ScoreWeights(relevance_weight=1.0, static_weight=0.0)
        scorer = CompositeScorer(np.asarray([0.9]), weights)
        assert scorer.static_prior(0) == 0.0

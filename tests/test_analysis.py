"""Tests for the analysis subpackage."""

import numpy as np
import pytest

from repro.analysis.compare import PolicyComparison, find_crossover
from repro.analysis.distributions import ecdf, histogram, lognormal_mle, tail_index_hill
from repro.analysis.percentiles import P2QuantileEstimator, exact_percentile
from repro.analysis.queueing_theory import (
    erlang_c,
    mg1_mean_wait,
    mgc_mean_wait_allen_cunneen,
    mmc_mean_queue_delay,
    mmc_mean_response,
)
from repro.errors import AnalysisError
from repro.sim.experiment import LoadPointSummary


class TestExactPercentile:
    def test_matches_numpy(self, rng):
        samples = rng.random(500)
        assert exact_percentile(samples, 73.5) == pytest.approx(
            np.percentile(samples, 73.5)
        )

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            exact_percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(Exception):
            exact_percentile([1.0], 101)


class TestP2Estimator:
    @pytest.mark.parametrize("quantile", [0.5, 0.9, 0.99])
    def test_close_to_exact_on_uniform(self, quantile, rng):
        estimator = P2QuantileEstimator(quantile)
        samples = rng.random(20_000)
        estimator.add_many(samples)
        exact = np.percentile(samples, quantile * 100)
        assert estimator.value() == pytest.approx(exact, abs=0.02)

    def test_close_on_lognormal_median(self, rng):
        estimator = P2QuantileEstimator(0.5)
        samples = rng.lognormal(0.0, 1.0, 20_000)
        estimator.add_many(samples)
        exact = np.percentile(samples, 50)
        assert estimator.value() == pytest.approx(exact, rel=0.05)

    def test_small_sample_is_exact(self):
        estimator = P2QuantileEstimator(0.5)
        estimator.add_many([3.0, 1.0, 2.0])
        assert estimator.value() == pytest.approx(2.0)

    def test_count_tracked(self):
        estimator = P2QuantileEstimator(0.9)
        estimator.add_many(range(10))
        assert estimator.count == 10

    def test_no_samples_rejected(self):
        with pytest.raises(AnalysisError):
            P2QuantileEstimator(0.9).value()

    def test_invalid_quantile_rejected(self):
        with pytest.raises(Exception):
            P2QuantileEstimator(0.0)
        with pytest.raises(Exception):
            P2QuantileEstimator(1.0)


class TestDistributions:
    def test_ecdf_monotone(self, rng):
        xs, fs = ecdf(rng.random(100))
        assert np.all(np.diff(xs) >= 0)
        assert fs[-1] == 1.0

    def test_histogram_counts_sum(self, rng):
        counts, edges = histogram(rng.random(200), bins=10)
        assert counts.sum() == 200
        assert edges.shape == (11,)

    def test_log_histogram(self, rng):
        counts, edges = histogram(rng.lognormal(0, 2, 500), bins=8, log_bins=True)
        assert np.all(np.diff(edges) > 0)
        assert counts.sum() == 500

    def test_lognormal_mle(self, rng):
        mu, sigma = lognormal_mle(rng.lognormal(1.5, 0.5, 20_000))
        assert mu == pytest.approx(1.5, abs=0.05)
        assert sigma == pytest.approx(0.5, abs=0.05)

    def test_hill_estimator_on_pareto(self, rng):
        alpha = 2.5
        samples = (1.0 / rng.random(50_000)) ** (1.0 / alpha)
        assert tail_index_hill(samples, 0.05) == pytest.approx(alpha, rel=0.2)

    def test_empty_inputs_rejected(self):
        with pytest.raises(AnalysisError):
            ecdf([])
        with pytest.raises(AnalysisError):
            lognormal_mle([])


class TestQueueingTheory:
    def test_erlang_c_known_value(self):
        # Classic check: c=2, offered load a=1 (rho=0.5) => P(wait)=1/3.
        assert erlang_c(arrival_rate=1.0, service_rate=1.0, servers=2) == (
            pytest.approx(1.0 / 3.0)
        )

    def test_mm1_reduces_to_rho(self):
        # For c=1, Erlang-C equals the utilization.
        assert erlang_c(0.6, 1.0, 1) == pytest.approx(0.6)

    def test_mm1_mean_wait(self):
        # M/M/1: W_q = rho / (mu - lambda).
        assert mmc_mean_queue_delay(0.5, 1.0, 1) == pytest.approx(0.5 / 0.5)

    def test_response_adds_service(self):
        wait = mmc_mean_queue_delay(2.0, 1.0, 4)
        assert mmc_mean_response(2.0, 1.0, 4) == pytest.approx(wait + 1.0)

    def test_mg1_exponential_matches_mm1(self):
        mm1 = mmc_mean_queue_delay(0.5, 1.0, 1)
        mg1 = mg1_mean_wait(0.5, 1.0, scv=1.0)
        assert mg1 == pytest.approx(mm1)

    def test_mg1_deterministic_halves_wait(self):
        assert mg1_mean_wait(0.5, 1.0, scv=0.0) == pytest.approx(
            0.5 * mg1_mean_wait(0.5, 1.0, scv=1.0)
        )

    def test_allen_cunneen_exponential_exact(self):
        assert mgc_mean_wait_allen_cunneen(2.0, 1.0, 1.0, 4) == pytest.approx(
            mmc_mean_queue_delay(2.0, 1.0, 4)
        )

    def test_unstable_rejected(self):
        with pytest.raises(AnalysisError):
            mmc_mean_queue_delay(5.0, 1.0, 4)
        with pytest.raises(AnalysisError):
            mg1_mean_wait(2.0, 1.0, 1.0)


def _summary(policy, rate, p99):
    return LoadPointSummary(
        policy=policy, rate=rate, n_cores=4, offered_utilization=0.5,
        observed=100, throughput=rate, utilization=0.5, mean_latency=p99 / 3,
        p50_latency=p99 / 5, p95_latency=p99 / 1.5, p99_latency=p99,
        mean_queue_delay=0.0, mean_degree=1.0,
    )


class TestCompare:
    def test_find_crossover_interpolates(self):
        rates = [1.0, 2.0, 3.0]
        a = [1.0, 2.0, 4.0]
        b = [3.0, 3.0, 3.0]
        crossing = find_crossover(rates, a, b)
        assert 2.0 < crossing < 3.0

    def test_no_crossover_returns_none(self):
        assert find_crossover([1, 2], [1.0, 1.0], [2.0, 2.0]) is None

    def test_comparison_metrics_and_envelope(self):
        rates = [10.0, 20.0]
        comparison = PolicyComparison(
            rates=rates,
            summaries={
                "a": [_summary("a", 10, 5.0), _summary("a", 20, 1.0)],
                "b": [_summary("b", 10, 2.0), _summary("b", 20, 4.0)],
            },
        )
        assert comparison.envelope_p99().tolist() == [2.0, 1.0]
        regret = comparison.regret_vs_envelope("a", ["a", "b"])
        assert regret.tolist() == [1.5, 0.0]

    def test_capacity_at_slo(self):
        comparison = PolicyComparison(
            rates=[1.0, 2.0, 3.0],
            summaries={
                "a": [_summary("a", 1, 1.0), _summary("a", 2, 2.0),
                      _summary("a", 3, 9.0)],
            },
        )
        assert comparison.capacity_at_slo("a", slo=2.5) == 2.0
        assert comparison.capacity_at_slo("a", slo=0.5) is None

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(AnalysisError):
            PolicyComparison(rates=[1.0], summaries={"a": []})

    def test_unknown_policy_rejected(self):
        comparison = PolicyComparison(rates=[1.0],
                                      summaries={"a": [_summary("a", 1, 1.0)]})
        with pytest.raises(AnalysisError):
            comparison.p99("zzz")

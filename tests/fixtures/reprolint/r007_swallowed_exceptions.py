"""R007 fixture: bare/blanket exception swallowing in sim hot paths.

The test copies this under ``sim/`` (rule active). Never executed.
"""


class SimulationError(Exception):
    pass


def risky() -> None:
    raise SimulationError("boom")


def bad_bare_except() -> None:
    try:
        risky()
    except:  # EXPECT:R007
        pass


def bad_swallowed_exception() -> None:
    try:
        risky()
    except Exception:  # EXPECT:R007
        pass


def good_specific_handling() -> int:
    try:
        risky()
    except SimulationError:
        return 1
    except Exception as exc:  # re-raised, not swallowed
        raise RuntimeError("unexpected") from exc
    return 0


def suppressed() -> None:
    try:
        risky()
    except Exception:  # reprolint: disable=R007 -- fixture demo
        pass

"""R009 fixture: units-of-measure dataflow violations.

Covers every mismatch class the rule detects: ms/s scale mixing,
time-vs-rate addition, rate-vs-interval inversion at a call site,
fraction/percentile scale confusion, and assignment of one unit to a
name that declares another. Never imported or executed.
"""

import numpy as np


def scale_mixing(deadline_ms: float, timeout_s: float) -> tuple:
    total = deadline_ms + timeout_s  # EXPECT:R009
    budget_ms = timeout_s  # EXPECT:R009
    ratio = deadline_ms / timeout_s  # EXPECT:R009
    fine_ms = deadline_ms + 5.0  # constants are dimensionless: no finding
    converted_ms = timeout_s * 1000.0  # scalar conversion: scale downgraded, fine
    legacy_ms = timeout_s  # reprolint: disable=R009 -- legacy dashboard stores seconds under _ms
    return (total, budget_ms, ratio, fine_ms, converted_ms, legacy_ms)


def family_mixing(rate: float, duration_s: float) -> float:
    broken = rate + duration_s  # EXPECT:R009
    count = rate * duration_s  # rate x time is a count: no finding
    if rate > duration_s:  # EXPECT:R009
        return broken
    return count


def interval_for(rate_qps: float) -> float:
    return 1.0 / rate_qps


def consume_interval(interval_s: float) -> float:
    return interval_s * 2.0


def inversion(rate_qps: float) -> float:
    good = consume_interval(interval_for(rate_qps))
    bad = consume_interval(rate_qps)  # EXPECT:R009
    return good + bad


def percentile_scales(latencies: list) -> float:
    p99 = np.percentile(latencies, 99)  # correct [0, 100] position
    wrong = np.percentile(latencies, 0.99)  # EXPECT:R009
    also_wrong = np.quantile(latencies, 99)  # EXPECT:R009
    return p99 + wrong + also_wrong


def propagation(warmup_s: float) -> float:
    copied = warmup_s  # unit flows through the assignment
    stale_ms = copied  # EXPECT:R009
    return stale_ms

"""Kernel-layer module: clock-agnostic, sees only foundation. Never
executed — the circular import with ``sim_mod`` is deliberate fixture
material (both files are only ever parsed)."""

import time  # EXPECT:R014

import sim_mod  # EXPECT:R014
import util_mod
from datetime import datetime  # EXPECT:R014
from sim_mod import SimDriver  # EXPECT:R014


class FakeClock:
    """Sanctioned clock type (listed in layers.toml clock_classes)."""

    @property
    def now(self) -> float:
        return 0.0


def good_read(clock: FakeClock) -> float:
    return clock.now  # typed as a clock class: sanctioned


def named_read(sim_clock) -> float:
    return sim_clock.now  # receiver *named* like a clock: sanctioned


def bad_read(engine) -> float:
    return engine.now  # EXPECT:R014


def drive(driver: SimDriver) -> None:
    driver.run()  # EXPECT:R014


def lazy_event_loop() -> None:
    import asyncio  # reprolint: disable=R014 -- fixture: suppression demo

    del asyncio


def decide(queue_length: int) -> float:
    return util_mod.clamp(float(queue_length), 0.0, 8.0)

"""Foundation-layer module: importable from everywhere. Never executed."""


def clamp(value: float, low: float, high: float) -> float:
    return min(max(value, low), high)

"""Sim-layer module: may see foundation and kernel. Never executed."""

import time

import kernel_mod
import util_mod


class SimDriver:
    """Virtual-time driver; downward imports above are all legal."""

    def __init__(self) -> None:
        self.started_at = time.monotonic()  # sim layer: time is fine

    def run(self) -> float:
        kernel_mod.good_read(kernel_mod.FakeClock())
        return util_mod.clamp(1.0, 0.0, 2.0)

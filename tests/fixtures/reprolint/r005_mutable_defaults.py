"""R005 fixture: mutable default arguments. Never imported or executed."""

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple


def bad_list_default(history=[]) -> list:  # EXPECT:R005
    history.append(1)
    return history


def bad_dict_default(cache={}) -> dict:  # EXPECT:R005
    return cache


def bad_call_defaults(a=list(), b=dict(), c=deque()) -> tuple:  # EXPECT:R005 EXPECT:R005 EXPECT:R005
    return a, b, c


def bad_kwonly_default(*, seen=set()) -> set:  # EXPECT:R005
    return seen


def good_defaults(
    items: Optional[List[int]] = None,
    table: Optional[Dict[str, int]] = None,
    frozen: Sequence[int] = (),
    label: str = "x",
) -> Tuple[list, dict]:
    return list(items or []), dict(table or {})


def suppressed(memo={}) -> dict:  # reprolint: disable=R005 -- fixture demo
    return memo

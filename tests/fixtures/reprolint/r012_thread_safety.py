"""R012 fixture: unlocked writes to shared state in worker-reachable code.

``run`` spawns a nested worker closure on a thread pool; everything the
worker can reach through the call graph is checked for writes to shared
(non-fresh) state outside a ``with <lock>:`` block. Never imported or
executed.
"""

import threading
from concurrent.futures import ThreadPoolExecutor


class SharedCounter:
    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.count = 0
        self.items: list = []

    def locked_add(self, value: int) -> None:
        with self.lock:
            self.count += value
            self.items.append(value)

    def unlocked_add(self, value: int) -> None:
        self.count += value  # EXPECT:R012
        self.items.append(value)  # EXPECT:R012


def run(n_workers: int) -> int:
    shared = SharedCounter()

    def worker() -> None:
        shared.locked_add(1)
        shared.unlocked_add(2)
        shared.count = 99  # EXPECT:R012
        scratch: list = []
        scratch.append(1)  # fresh local: never flagged
        with shared.lock:
            shared.count += 1  # under the lock: fine

    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        futures = [pool.submit(worker) for _ in range(n_workers)]
        for future in futures:
            future.result()
    return shared.count


def run_suppressed(n_workers: int) -> None:
    shared = SharedCounter()

    def primer() -> None:
        shared.count = 0  # reprolint: disable=R012 -- single-threaded priming before the pool starts

    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        pool.submit(primer)


class WorkerLocal:
    """Constructed inside each worker and never published: owned."""

    def __init__(self) -> None:
        self.total = 0  # 'self' is owned inside a constructor call
        self.seen: list = []

    def bump(self, value: int) -> None:
        self.total += value  # receiver is owned at every call site
        self.seen.append(value)


def drain(local: WorkerLocal, values: list) -> None:
    for value in values:
        local.total += value  # 'local' is bound to an owned argument


def run_owned(n_workers: int) -> None:
    def worker() -> None:
        local = WorkerLocal()  # thread-local object graph: never flagged
        local.bump(1)
        drain(local, [2, 3])

    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        pool.submit(worker)

"""R011 fixture: typed ``*Config`` field consumption.

The sharpening over R006: a field read named ``dead_knob`` on some
*other* class no longer counts as consumption of
``TunedConfig.dead_knob`` — only reads through a receiver of the
config's own type (or an untyped receiver) do. Never imported or
executed.
"""

from dataclasses import dataclass
from typing import ClassVar


@dataclass(frozen=True)
class TunedConfig:
    rate: float = 100.0  # consumed via a typed receiver below
    dead_knob: float = 0.5  # EXPECT:R011
    reflective: int = 1  # reprolint: disable=R011 -- consumed via getattr sweep
    fuzzy: int = 2  # consumed via an untyped receiver: not flagged
    kind: ClassVar[str] = "tuned"  # ClassVar: never flagged


class Telemetry:
    """Has a name-colliding ``dead_knob`` attribute of its own."""

    def __init__(self) -> None:
        self.dead_knob = 0.0

    def read(self) -> float:
        # A typed read — but of Telemetry, not TunedConfig, so it does
        # NOT mark TunedConfig.dead_knob as consumed (R006 would).
        return self.dead_knob


def consume(config: TunedConfig) -> float:
    return config.rate


def untyped_consumer(config) -> int:
    # Unannotated receiver: unresolvable, counts as consumption.
    return config.fuzzy


def reflective_consumer(config: TunedConfig) -> object:
    # getattr with a string constant counts as (untyped) consumption —
    # of 'kind' here; 'reflective' above deliberately has NO consumer
    # and relies on its suppression comment.
    return getattr(config, "kind")

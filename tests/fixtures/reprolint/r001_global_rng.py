"""R001 fixture: global / unseeded RNG use.

Lines carrying a violation are tagged with expectation markers; the
test asserts reprolint reports exactly those lines and nothing else.
This file is lint fixture data — it is never imported or executed.
"""

import random

import numpy as np

from repro.util.rng import RngFactory, derive_seed, make_rng


def bad_global_numpy() -> float:
    np.random.seed(0)  # EXPECT:R001
    a = np.random.rand(4)  # EXPECT:R001
    b = np.random.normal(0.0, 1.0)  # EXPECT:R001
    return float(a.sum() + b)


def bad_unseeded_default_rng() -> float:
    rng = np.random.default_rng()  # EXPECT:R001
    other = np.random.default_rng(None)  # EXPECT:R001
    return float(rng.random() + other.random())


def bad_stdlib_random() -> float:
    random.seed(7)  # EXPECT:R001
    x = random.random()  # EXPECT:R001
    y = random.uniform(0.0, 1.0)  # EXPECT:R001
    return x + y


def bad_unseeded_make_rng() -> float:
    rng = make_rng(None)  # EXPECT:R001
    return float(rng.random())


def good_seeded_streams(seed: int) -> float:
    rng = np.random.default_rng(seed)
    named = RngFactory(seed).stream("arrivals")
    derived = np.random.default_rng(derive_seed(seed, "service"))
    keyword = np.random.default_rng(seed=seed)
    return float(
        rng.random() + named.random() + derived.random() + keyword.random()
    )


def suppressed_with_justification() -> float:
    probe = np.random.default_rng()  # reprolint: disable=R001 -- fixture demo
    return float(probe.random())

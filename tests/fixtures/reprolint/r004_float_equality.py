"""R004 fixture: float equality on latency/time-valued names.

Never imported or executed.
"""

import math


def bad_exact_comparisons(p99_latency: float, deadline: float, now: float) -> bool:
    a = p99_latency == deadline  # EXPECT:R004
    b = now != 0.0  # EXPECT:R004
    c = 1.5 == p99_latency  # EXPECT:R004
    return a or b or c


def good_tolerant_comparisons(p99_latency: float, deadline: float) -> bool:
    close = math.isclose(p99_latency, deadline, rel_tol=1e-9)
    ordered = p99_latency <= deadline
    non_time = "adaptive" == "fixed"  # not a time-like name
    count = 3
    exact_int = count == 3  # ints compare exactly; not time-like
    none_check = deadline == None  # noqa: E711 - identity-style, exempt
    return close or ordered or non_time or exact_int or none_check


def suppressed(mean_latency: float) -> bool:
    return mean_latency == 0.0  # reprolint: disable=R004 -- fixture demo

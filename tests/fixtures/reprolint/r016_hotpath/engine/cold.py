"""Build-time module in the hot-path directory but NOT reachable from
the declared entry point — the reachability BFS must leave it alone."""

import numpy as np


def rebuild(values):
    out = np.empty(0, dtype=np.float64)
    for value in values:
        out = np.append(out, value)  # unreachable from run_query: not flagged
    return out

"""R016 fixture: numpy anti-patterns reachable from the query path.

Every helper below is called (transitively) from ``run_query``, the
entry point declared in the adjacent ``layers.toml``. Never executed.
"""

import numpy as np


def run_query(values):
    out = gather(values)
    total = accumulate(values)
    squares = scale(values)
    scaled = scale32(values)
    grown = widen(values)
    return out, total, squares, scaled, grown


def gather(values):
    out = np.empty(0, dtype=np.float64)  # zero-size sentinel: fine
    for value in values:
        out = np.append(out, value)  # EXPECT:R016
    return out


def accumulate(values):
    total = np.zeros(1, dtype=np.float64)  # hoisted: fine
    for value in values:
        buffer = np.zeros(8, dtype=np.float64)  # EXPECT:R016
        buffer[0] = value
        total = total + buffer[:1]
    return total


def scale(values):
    squares = np.zeros_like(values)
    for i in range(len(values)):  # EXPECT:R016
        squares[i] = values[i] * values[i]
    return squares


def scale32(values):
    buffer = np.zeros(16, dtype=np.float32)
    scaled = buffer * 1.5  # EXPECT:R016
    return scaled


def widen(values):
    grown = values
    for _ in range(2):
        grown = grown + np.ones(4)  # reprolint: disable=R016 -- fixture: suppression demo
    return grown

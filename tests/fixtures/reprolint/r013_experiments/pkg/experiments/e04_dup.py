"""Duplicates e01_alpha's experiment id (and is unregistered too)."""

EXPERIMENT_ID = "e01"  # EXPECT:R013 EXPECT:R013


def run(outdir: str) -> None:
    del outdir

"""Unregistered work-in-progress experiment, suppressed with a reason."""

EXPERIMENT_ID = "e06"  # reprolint: disable=R013 -- WIP: registered once results stabilize


def run(outdir: str) -> None:
    del outdir

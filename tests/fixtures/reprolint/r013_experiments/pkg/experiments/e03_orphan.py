"""Defines an experiment but never appears in the registry's _MODULES."""

EXPERIMENT_ID = "e03"  # EXPECT:R013


def run(outdir: str) -> None:
    del outdir

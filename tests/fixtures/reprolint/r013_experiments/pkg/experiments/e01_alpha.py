"""Registered, well-formed experiment: no findings."""

EXPERIMENT_ID = "e01"


def run(outdir: str) -> None:
    del outdir

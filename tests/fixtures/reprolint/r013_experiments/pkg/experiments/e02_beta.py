"""Registered, well-formed experiment: no findings."""

EXPERIMENT_ID = "e02"


def run(outdir: str) -> None:
    del outdir

"""Registered but missing the run() entry point the harness calls."""

EXPERIMENT_ID = "e05"

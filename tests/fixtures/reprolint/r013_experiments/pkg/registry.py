"""R013 fixture registry: deliberately incomplete and inconsistent."""

from pkg.experiments import e01_alpha, e02_beta, e05_norun

_MODULES = (  # EXPECT:R013
    e01_alpha,
    e02_beta,
    e05_norun,
)

EXPERIMENTS = {module.EXPERIMENT_ID: module.run for module in _MODULES}

"""Purity-layer policy module. Never executed.

Pure decisions take (state, injected rng stream) and return values;
every hidden input below — I/O, module-global mutation, ad-hoc RNG —
is a violation.
"""

import numpy as np

TUNING = {"step": 1.0}
_HISTORY: list = []


def decide(queue_length: int) -> int:
    print("deciding", queue_length)  # EXPECT:R017
    TUNING["step"] = 2.0  # EXPECT:R017
    _HISTORY.append(queue_length)  # EXPECT:R017
    return 1


def snapshot(path) -> None:
    handle = open("policy.log")  # EXPECT:R017
    handle.close()
    path.write_text("snapshot")  # EXPECT:R017


def reseed(seed: int) -> None:
    global TUNING  # EXPECT:R017
    TUNING = {"step": float(seed)}


def sample() -> float:
    rng = np.random.default_rng(0)  # EXPECT:R017
    return float(rng.standard_normal())


def jitter(rng) -> float:
    return float(rng.normal())  # injected stream: fine


def rescale(factor: float) -> dict:
    scaled = {"step": TUNING["step"] * factor}  # read-only use: fine
    return scaled


def debug_decide(queue_length: int) -> int:
    print(queue_length)  # reprolint: disable=R017 -- fixture: suppression demo
    return 0

"""R010 fixture: colliding RngFactory stream/child label paths.

Two call sites asking the same factory for the same label receive
bit-identical generators; the rule also catches a constant label inside
a loop (every iteration replays one stream) and collisions through
``child()`` derivations. Never imported or executed.
"""

from repro.util.rng import RngFactory


def duplicated_label(seed: int) -> None:
    streams = RngFactory(seed)
    arrival_rng = streams.stream("arrivals")  # EXPECT:R010
    service_rng = streams.stream("service")
    sample_rng = streams.stream("arrivals")  # EXPECT:R010
    del arrival_rng, service_rng, sample_rng


def loop_constant_label(seed: int) -> None:
    factory = RngFactory(seed)
    for shard_id in range(4):
        shard_rng = factory.stream("shard")  # EXPECT:R010
        del shard_rng
    for shard_id in range(4):
        ok_rng = factory.stream("shard", shard_id)  # varying label: fine
        del ok_rng


def child_path_collision(seed: int) -> None:
    root = RngFactory(seed)
    shard = root.child("shard")
    noise_a = shard.stream("noise")  # EXPECT:R010
    noise_b = root.child("shard").stream("noise")  # EXPECT:R010
    del noise_a, noise_b


def distinct_factories(seed: int) -> None:
    # Same label on *different* factories (different seed exprs): fine.
    one = RngFactory(seed)
    two = RngFactory(seed + 1)
    a = one.stream("arrivals")
    b = two.stream("arrivals")
    del a, b


def deliberate_replay(seed: int) -> None:
    factory = RngFactory(seed)
    first = factory.stream("replay")  # reprolint: disable=R010 -- replay is the point here
    again = factory.stream("replay")  # reprolint: disable=R010 -- replay is the point here
    del first, again

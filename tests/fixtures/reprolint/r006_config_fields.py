"""R006 fixture: unconsumed ``*Config`` dataclass fields.

Consumption is project-wide attribute-read analysis; this file carries
both the configs and their consumers. Never imported or executed.
"""

from dataclasses import dataclass
from typing import ClassVar, Optional


@dataclass(frozen=True)
class SweepConfig:
    rate: float = 100.0
    duration: float = 10.0
    dead_knob: Optional[int] = None  # EXPECT:R006
    whitelisted: int = 3  # reprolint: disable=R006 -- consumed reflectively
    kind: ClassVar[str] = "sweep"  # ClassVar: not a field, never flagged


@dataclass
class UnusedEverythingConfig:
    orphan: float = 0.0  # EXPECT:R006


class NotAConfig:
    # Not a dataclass: plain annotations here are not checked.
    ignored: int = 0


def consume(config: SweepConfig) -> float:
    return config.rate * config.duration

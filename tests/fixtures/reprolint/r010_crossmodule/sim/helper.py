"""Callee that derives a stream from a factory it was handed."""

from repro.util.rng import RngFactory


def sample_stream(streams: RngFactory) -> object:
    return streams.stream("arrivals")  # EXPECT:R010

"""Caller that also derives "arrivals" from the SAME factory it passes
to ``helper.sample_stream`` — a cross-module stream collision."""

from repro.util.rng import RngFactory

from sim.helper import sample_stream


def build(seed: int) -> None:
    streams = RngFactory(seed)
    arrival_rng = streams.stream("arrivals")  # EXPECT:R010
    other = sample_stream(streams)
    del arrival_rng, other

"""R008 fixture: public sim/policies/core functions must be annotated.

The test copies this under ``sim/`` (rule active) and ``engine/``
(outside R008 scope). Never executed.
"""

from typing import Iterator, Optional


def bad_unannotated_params(rate, duration=1.0) -> float:  # EXPECT:R008
    return rate * duration


def bad_missing_return(rate: float):  # EXPECT:R008
    return rate


def bad_varargs(*values, **options) -> None:  # EXPECT:R008
    del values, options


def good_fully_annotated(rate: float, label: Optional[str] = None) -> float:
    del label
    return rate


def _private_helper(rate, duration):  # private: exempt
    return rate * duration


def good_outer() -> int:
    def nested(x):  # nested closures: exempt
        return x

    return nested(1)


class ServerModel:
    def __init__(self, n_cores: int) -> None:  # __init__ counts as public
        self.n_cores = n_cores

    def bad_method(self, degree) -> int:  # EXPECT:R008
        return min(degree, self.n_cores)

    def good_method(self, degree: int) -> int:
        return min(degree, self.n_cores)

    def _private_method(self, degree):  # exempt
        return degree

    @staticmethod
    def good_static(count: int) -> int:
        return count


class _PrivateClass:
    def methods_exempt(self, anything):  # enclosing class is private
        return anything


def bad_generator(n) -> "Iterator[int]":  # EXPECT:R008
    yield n


def suppressed(rate, duration):  # reprolint: disable=R008 -- fixture demo
    return rate * duration

"""R002 fixture: child RNGs derived by drawing from a parent generator.

Tagged lines are expected findings; untagged RNG code is the approved
pattern. Never imported or executed.
"""

import numpy as np

from repro.util.rng import RngFactory, derive_seed, make_rng


def bad_position_coupled_children(seed: int) -> float:
    rng = np.random.default_rng(seed)
    arrival_rng = np.random.default_rng(rng.integers(2**63))  # EXPECT:R002
    sample_rng = np.random.default_rng(int(rng.integers(2**63)))  # EXPECT:R002
    legacy = make_rng(rng.integers(0, 2**31))  # EXPECT:R002
    return float(arrival_rng.random() + sample_rng.random() + legacy.random())


def good_hash_derived_children(seed: int) -> float:
    streams = RngFactory(seed)
    arrival_rng = streams.stream("arrivals")
    sample_rng = np.random.default_rng(derive_seed(seed, "sample"))
    return float(arrival_rng.random() + sample_rng.random())


def good_plain_draws(seed: int) -> int:
    # Drawing integers for *data* (not for seeding) is fine.
    rng = RngFactory(seed).stream("indices")
    return int(rng.integers(100))


def suppressed(seed: int) -> float:
    rng = np.random.default_rng(seed)
    child = np.random.default_rng(rng.integers(2**63))  # reprolint: disable=R002 -- fixture demo
    return float(child.random())

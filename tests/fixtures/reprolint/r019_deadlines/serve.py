"""R019 fixture: deadline propagation in the runtime layer.

Unbounded awaited I/O, constant budgets that ignore a threaded
deadline, swallowed CancelledError, and dropped task handles — each
next to the bounded/propagating counterpart that must stay clean.
Never imported or executed.
"""

import asyncio

from kernel import admit


async def unbounded_read(reader):
    return await reader.read(1024)  # EXPECT:R019


async def bounded_read(reader, deadline_s):
    return await asyncio.wait_for(reader.read(1024), timeout=deadline_s)


async def context_bounded(queue, deadline_s):
    async with asyncio.timeout(deadline_s):
        return await queue.get()


async def keyword_bounded(client, deadline_s):
    return await client.fetch("/isn", timeout=deadline_s)


async def constant_budget(client, deadline_s):
    return await client.fetch("/isn", timeout=0.5)  # EXPECT:R019


async def derived_budget(client, deadline_s):
    remaining = deadline_s / 2.0
    return await client.fetch("/isn", timeout=remaining)


async def custom_io_unbounded(backend):
    return await backend.poll()  # EXPECT:R019


def swallow_bare(handle):
    try:
        handle.cancel()
    except:  # EXPECT:R019
        pass


async def swallow_cancelled(queue, deadline_s):
    try:
        return await asyncio.wait_for(queue.get(), timeout=deadline_s)
    except asyncio.CancelledError:  # EXPECT:R019
        return None


async def swallow_tuple(queue, deadline_s):
    try:
        return await asyncio.wait_for(queue.get(), timeout=deadline_s)
    except (ValueError, asyncio.CancelledError):  # EXPECT:R019
        return None


async def reraise_cancelled(queue, deadline_s):
    try:
        return await asyncio.wait_for(queue.get(), timeout=deadline_s)
    except asyncio.CancelledError:
        raise
    except Exception:
        return None  # 'except Exception' misses CancelledError: clean


async def spawn_and_drop(worker):
    asyncio.create_task(worker())  # EXPECT:R019


async def spawn_and_leak(worker):
    task = asyncio.create_task(worker())  # EXPECT:R019
    return admit()


async def spawn_and_await(worker, deadline_s):
    task = asyncio.create_task(worker())
    return await asyncio.wait_for(task, timeout=deadline_s)


async def suppressed_unbounded(reader):
    return await reader.read(4)  # reprolint: disable=R019 -- one-shot handshake


class Server:
    def __init__(self):
        self.tasks = []

    async def spawn_registered(self, worker):
        self.tasks.append(asyncio.create_task(worker()))

"""Sim-layer helper for the R019 fixture: NOT a deadline layer, so the
unbounded await below is exempt (sound-by-omission scoping)."""


def admit():
    return True


async def exempt_unbounded(reader):
    return await reader.read(1024)

"""R003 fixture: wall-clock reads in simulated-time code.

The test copies this file under a ``sim/`` directory (where the rule
applies) and under a ``harness/`` directory (exempt). Never executed.
"""

import time
from datetime import datetime


def bad_wall_clock_reads() -> float:
    started = time.time()  # EXPECT:R003
    tick = time.perf_counter()  # EXPECT:R003
    mono = time.monotonic()  # EXPECT:R003
    stamp = datetime.now()  # EXPECT:R003
    return started + tick + mono + stamp.timestamp()


def good_simulated_time(now: float) -> float:
    # Simulation code receives time as a parameter (simulator.now).
    return now + 1.0


def suppressed_timing() -> float:
    return time.time()  # reprolint: disable=R003 -- fixture demo

"""Suppression edge cases, asserted exactly by the suppression tests.

Each line documents the intended interaction:

* ``disable=all`` silences every rule on its line only;
* comma lists silence exactly the listed rules;
* malformed directives (missing ``=``, unknown word) suppress nothing;
* a ``disable-file`` directive silences its rule everywhere in the file
  and composes with per-line disables for other rules.

R001 (unseeded RNG) and R005 (mutable defaults) are the probe rules —
each violating line is annotated with what still fires. Never imported
or executed.
"""
# reprolint: disable-file=R004 -- file-wide: probe for disable-file x per-line interplay

import numpy as np

rng_all = np.random.default_rng()  # reprolint: disable=all
rng_list = np.random.default_rng()  # reprolint: disable=R001,R005 -- comma list
rng_other = np.random.default_rng()  # reprolint: disable=R005 -- wrong rule, R001 still fires  # EXPECT:R001
rng_malformed = np.random.default_rng()  # reprolint: disable R001 (missing '=')  # EXPECT:R001
rng_typo = np.random.default_rng()  # reprolint: disab1e=R001 -- typo directive  # EXPECT:R001
rng_empty = np.random.default_rng()  # reprolint: disable= -- empty list  # EXPECT:R001


def mutable_default(xs: list = []) -> list:  # EXPECT:R005
    # The file-wide R004 disable does not touch R005.
    return xs


def float_eq_suppressed_filewide(t1: float, t2: float) -> bool:
    return t1 == t2  # R004, silenced by the disable-file directive above


def combined(elapsed: float = 0.0, ys: list = []) -> bool:  # reprolint: disable=R005 -- per-line on top of file-wide R004
    return elapsed == float(len(ys))  # R004 again: still file-silenced here

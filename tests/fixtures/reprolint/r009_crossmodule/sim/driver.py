"""Caller side: a seconds-valued arrival interval crosses the module
boundary into ``server.admit``'s milliseconds-valued deadline, and the
same interval is passed where a rate is expected (1/x inversion)."""

from sim.server import admit, set_arrival_rate


def drive(interval_s: float) -> None:
    admit(0, interval_s)  # EXPECT:R009
    admit(0, interval_s * 1000.0)  # converted: fine
    set_arrival_rate(interval_s)  # EXPECT:R009
    set_arrival_rate(1.0 / interval_s)  # inverted: fine

"""Callee side of the cross-module units regression: ms-valued API."""


def admit(query_id: int, deadline_ms: float) -> bool:
    return query_id >= 0 and deadline_ms > 0.0


def set_arrival_rate(rate_qps: float) -> float:
    return rate_qps

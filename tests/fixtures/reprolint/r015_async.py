"""R015 fixture: blocking calls in async defs, dropped coroutines, and
an async/thread shared-state race. Never imported or executed."""

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from time import sleep

import time


async def fetch_config(path) -> str:
    time.sleep(0.1)  # EXPECT:R015
    sleep(0.1)  # EXPECT:R015
    handle = open("config.toml")  # EXPECT:R015
    handle.close()
    raw = path.read_text()  # EXPECT:R015
    await asyncio.sleep(0.1)  # awaited async sleep: fine
    return raw


class Gate:
    def __init__(self) -> None:
        self.lock = threading.Lock()

    async def enter(self) -> None:
        self.lock.acquire()  # EXPECT:R015

    async def enter_bounded(self) -> None:
        self.lock.acquire(timeout=0.1)  # bounded: cannot deadlock the loop


async def do_work() -> None:
    await asyncio.sleep(0.0)


async def kickoff() -> None:
    do_work()  # EXPECT:R015
    await do_work()  # awaited: fine
    asyncio.create_task(do_work())  # handed to a sink: fine


def sync_kickoff() -> None:
    do_work()  # EXPECT:R015


class Bridge:
    """Writes self.tally from an async task AND a thread worker."""

    def __init__(self) -> None:
        self.tally = 0
        self.lock = threading.Lock()

    async def on_result(self) -> None:
        self.tally += 1  # EXPECT:R015

    async def on_result_locked(self) -> None:
        with self.lock:
            self.tally += 1  # under the lock: fine

    def pump(self, n_workers: int) -> None:
        def worker() -> None:
            self.tally += 1  # thread-side write (reported on the async side)

        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            for _ in range(n_workers):
                pool.submit(worker)


async def legacy_poll() -> None:
    time.sleep(0.5)  # reprolint: disable=R015 -- fixture: suppression demo

"""Sink module of the R018 fixture: 'serialized experiment results'.

Tainted values arriving here via calls are reported at the call sites;
taint *created* here is reported at the return below.
"""

import time


def record(payload):
    return dict(payload)


def stamped_summary(payload):
    summary = dict(payload)
    summary["written_at"] = time.time()  # EXPECT:R018
    return summary

"""R018 fixture: determinism taint flowing into declared sinks.

Sources: wall-clock reads, ad-hoc RNG, os.environ, id(), set iteration
order. Sinks (declared in the sibling layers.toml): results.store and
the write_manifest callable. Sanitizers: sorted(), FakeClock,
RngFactory. Never imported or executed.
"""

import os
import random
import time

from helper import constant, describe, scale
from results.store import record


class FakeClock:
    def __init__(self):
        self.now = 0.0


class RngFactory:
    def __init__(self, seed):
        self.seed = seed

    def stream(self, label):
        return label


def wall_clock_flow():
    start = time.time()
    elapsed = time.time() - start
    record({"elapsed_s": elapsed})  # EXPECT:R018
    record({"elapsed_s": 0.0})  # clean literal: fine


def arithmetic_and_fstring_flow():
    t0 = time.perf_counter()
    label = f"took {t0:.1f}s"
    record(label)  # EXPECT:R018


def env_flow():
    host = os.environ.get("HOSTNAME", "unknown")
    record({"host": host})  # EXPECT:R018
    region = os.getenv("REGION")
    write_manifest({"region": region})  # EXPECT:R018


def adhoc_rng_flow():
    jitter = random.random()
    record({"jitter": jitter})  # EXPECT:R018


def identity_flow():
    token = id(object())
    record({"token": token})  # EXPECT:R018


def set_order_flow():
    shards = {"a", "b", "c"}
    order = list(shards)
    record({"order": order})  # EXPECT:R018
    record({"order": sorted(shards)})  # sorted(): sanitized


def cross_module_flow():
    t0 = time.monotonic()
    scaled = scale(t0, 2.0)
    record({"scaled": scaled})  # EXPECT:R018
    text = describe(scale(t0, 2.0))
    record({"text": text})  # EXPECT:R018
    record({"fixed": constant(t0)})  # callee ignores its argument: clean


def sanitized_clock_flow():
    clock = FakeClock()
    record({"now": clock.now})  # declared sanitizer class: clean
    streams = RngFactory(time.monotonic_ns())
    record({"draw": streams.stream("arrivals")})  # sanitizer: clean


def suppressed_flow():
    stamp = time.time()
    record({"stamp": stamp})  # reprolint: disable=R018 -- legacy import shim


def write_manifest(payload):
    return payload

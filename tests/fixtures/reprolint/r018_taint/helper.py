"""Helpers for the R018 fixture: cross-module taint propagation."""


def scale(value, factor):
    return value * factor


def describe(value):
    return f"value={value:.3f}"


def constant(_value):
    return 42.0

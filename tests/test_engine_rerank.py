"""Tests for the optional second-phase (L2) rerank cost."""

import pytest

from repro.engine.cost import CostModel
from repro.engine.executor import Engine, EngineConfig


@pytest.fixture(scope="module")
def rerank_engines(small_workbench):
    base = Engine(small_workbench.index, EngineConfig())
    reranking = Engine(
        small_workbench.index,
        EngineConfig(
            cost_model=CostModel(rerank_doc_cost=5e-6, rerank_depth=200)
        ),
    )
    return base, reranking


class TestRerankCost:
    def test_disabled_by_default(self):
        assert CostModel().rerank_time(1_000) == 0.0

    def test_bounded_by_depth_and_matches(self):
        model = CostModel(rerank_doc_cost=1e-6, rerank_depth=100)
        assert model.rerank_time(50) == pytest.approx(50e-6)
        assert model.rerank_time(500) == pytest.approx(100e-6)
        assert model.rerank_time(0) == 0.0

    def test_negative_params_rejected(self):
        with pytest.raises(Exception):
            CostModel(rerank_doc_cost=-1.0)
        with pytest.raises(Exception):
            CostModel(rerank_depth=-1)
        with pytest.raises(Exception):
            CostModel(rerank_depth=1.5)

    def test_rerank_increases_latency(self, rerank_engines, sample_queries):
        base, reranking = rerank_engines
        query = max(sample_queries,
                    key=lambda q: base.execute(q, 1).docs_matched)
        assert reranking.execute(query, 1).latency > base.execute(query, 1).latency

    def test_rerank_flattens_speedup(self, rerank_engines, sample_queries):
        """The L2 phase is serial, so it deepens the Amdahl fraction."""
        base, reranking = rerank_engines
        query = max(sample_queries,
                    key=lambda q: base.execute(q, 1).chunks_evaluated)

        def speedup(engine):
            trace = engine.trace(query)
            t1 = engine.execute_trace(trace, 1).latency
            t8 = engine.execute_trace(trace, 8).latency
            return t1 / t8

        assert speedup(reranking) < speedup(base)

    def test_results_unchanged_by_rerank_cost(self, rerank_engines, sample_queries):
        base, reranking = rerank_engines
        for query in sample_queries[:10]:
            assert (
                base.execute(query, 2).doc_ids
                == reranking.execute(query, 2).doc_ids
            )

"""Tests for the overload-robustness layer: deadlines, load shedding,
fault injection, and partial/hedged cluster aggregation."""

import math

import numpy as np
import pytest

from repro.engine.query import Query
from repro.policies.base import ParallelismPolicy, QueryInfo, SystemState
from repro.policies.fixed import FixedPolicy, SequentialPolicy
from repro.profiles.measurement import QueryCostTable
from repro.sim.arrivals import TraceArrivals
from repro.sim.cluster import ClusterConfig, run_cluster_point
from repro.sim.engine import Simulator
from repro.sim.experiment import LoadPointConfig, run_load_point
from repro.sim.faults import ClusterFaultPlan, FaultSchedule
from repro.sim.metrics import MetricsCollector
from repro.sim.oracle import ServiceOracle
from repro.sim.server import IndexServerModel


def _constant_table(n_queries=10, t1=1.0, degrees=(1, 2, 4), speedup=None):
    speedup = speedup or {1: 1.0, 2: 1.8, 4: 3.0}
    latency = np.stack(
        [np.full(n_queries, t1 / speedup[p]) for p in degrees], axis=1
    )
    cpu = latency * np.asarray(degrees)[None, :]
    chunks = np.ones((n_queries, len(degrees)), dtype=np.int64)
    queries = [Query.of([0], query_id=i) for i in range(n_queries)]
    return QueryCostTable(queries, degrees, latency, cpu, chunks)


def _run_trace(policy, arrival_times, n_cores=4, table=None, horizon=100.0,
               **server_kwargs):
    table = table if table is not None else _constant_table()
    oracle = ServiceOracle(table)
    sim = Simulator()
    metrics = MetricsCollector(warmup=0.0, horizon=horizon, n_cores=n_cores)
    server = IndexServerModel(sim, oracle, policy, n_cores, metrics,
                              **server_kwargs)
    for i, t in enumerate(arrival_times):
        sim.schedule_at(t, lambda i=i: server.submit(i % oracle.n_queries))
    sim.run()
    return metrics, server


class TestDeadlineShedding:
    def test_queued_past_budget_are_shed(self):
        # t1 = 1.0, deadline 1.5: the first query is served; the next
        # two would start with wait 1.0 and 1.0 + t1 > 1.5, so both shed.
        metrics, server = _run_trace(
            SequentialPolicy(), [0.0, 0.0, 0.0], n_cores=1, deadline=1.5,
        )
        assert metrics.n_observed == 1
        assert metrics.n_shed == 2
        assert server.n_shed == 2
        assert metrics.shed_by_reason == {"deadline": 2}
        assert metrics.records[0].latency == pytest.approx(1.0)

    def test_hopeless_queries_shed_at_arrival_wait_zero(self):
        # deadline < t1: even with zero wait no query can make the SLO.
        metrics, _ = _run_trace(
            SequentialPolicy(), [0.0, 0.5], n_cores=1, deadline=0.9,
        )
        assert metrics.n_observed == 0
        assert metrics.n_shed == 2

    def test_shed_rate_and_slo_statistics(self):
        metrics, _ = _run_trace(
            SequentialPolicy(), [0.0, 0.0, 0.0], n_cores=1, deadline=1.5,
        )
        assert metrics.shed_rate() == pytest.approx(2.0 / 3.0)
        # One query answered in budget out of three demanded.
        assert metrics.slo_attainment(1.5) == pytest.approx(1.0 / 3.0)
        assert metrics.goodput(1.5) == pytest.approx(1.0 / 100.0)

    def test_no_deadline_no_sheds(self):
        metrics, _ = _run_trace(SequentialPolicy(), [0.0, 0.0, 0.0], n_cores=1)
        assert metrics.n_shed == 0
        assert metrics.n_observed == 3
        assert metrics.shed_rate() == 0.0


class TestAdmissionCap:
    def test_arrivals_beyond_cap_rejected(self):
        # One running + one queued; the third arrival finds the queue at
        # the cap and is rejected at the door.
        metrics, _ = _run_trace(
            SequentialPolicy(), [0.0, 0.0, 0.0], n_cores=1, max_queue_length=1,
        )
        assert metrics.n_observed == 2
        assert metrics.n_shed == 1
        assert metrics.shed_by_reason == {"admission": 1}

    def test_cap_not_hit_under_light_load(self):
        metrics, _ = _run_trace(
            SequentialPolicy(), [0.0, 2.0, 4.0], n_cores=1, max_queue_length=1,
        )
        assert metrics.n_shed == 0


class TestServerFaults:
    def test_slowdown_scales_service_time(self):
        metrics, _ = _run_trace(
            SequentialPolicy(), [0.0], n_cores=1,
            faults=FaultSchedule.slowdown(0.0, 10.0, 2.0),
        )
        assert metrics.records[0].latency == pytest.approx(2.0)

    def test_slowdown_applies_at_dispatch_time(self):
        # The window ends at 0.5; a query dispatched after it is healthy.
        metrics, _ = _run_trace(
            SequentialPolicy(), [1.0], n_cores=1,
            faults=FaultSchedule.slowdown(0.0, 0.5, 3.0),
        )
        assert metrics.records[0].latency == pytest.approx(1.0)

    def test_crash_sheds_dispatched_queries(self):
        metrics, _ = _run_trace(
            SequentialPolicy(), [0.0, 2.0], n_cores=1,
            faults=FaultSchedule.crash(0.0, 1.0),
        )
        assert metrics.n_shed == 1
        assert metrics.shed_by_reason == {"fault": 1}
        assert metrics.n_observed == 1

    def test_empty_schedule_is_ignored(self):
        metrics, server = _run_trace(
            SequentialPolicy(), [0.0], n_cores=1, faults=FaultSchedule(),
        )
        assert server.faults is None
        assert metrics.records[0].latency == pytest.approx(1.0)


class TestPolicyVisibility:
    def test_policy_sees_sheds_and_overload(self):
        observed = []

        class Spy(ParallelismPolicy):
            name = "spy"

            def choose_degree(self, state: SystemState, info: QueryInfo) -> int:
                observed.append((state.n_shed, state.overloaded))
                return 1

        # First dispatch: nothing shed yet. After the deadline kills two
        # queued queries, the next dispatched query sees n_shed == 2 and
        # the overloaded flag raised in the same dispatch cycle.
        _run_trace(Spy(), [0.0, 0.0, 0.0, 1.0], n_cores=1, deadline=1.5)
        assert observed[0] == (0, False)
        assert observed[1] == (2, True)

    def test_default_state_has_no_sheds(self):
        state = SystemState(now=0.0, n_queued=0, n_running=0, free_cores=2,
                            n_cores=2)
        assert state.n_shed == 0
        assert state.overloaded is False


def _cluster_table(n=500, t1=0.002):
    return _constant_table(n_queries=n, t1=t1)


class TestPartialAggregation:
    def test_quorum_answers_partial(self):
        oracle = ServiceOracle(_cluster_table())
        config = ClusterConfig(n_shards=2, n_cores_per_shard=2, rate=50.0,
                               duration=4.0, warmup=1.0,
                               aggregation_overhead=0.0, seed=3, quorum=1)
        summary = run_cluster_point(oracle, SequentialPolicy, config)
        assert summary.observed > 0
        assert summary.n_partial == summary.observed
        assert summary.n_full == 0
        assert summary.mean_coverage == pytest.approx(0.5)

    def test_timeout_emits_partial_answer(self):
        # Shard 1 runs 100x slow (0.2 s) against a 0.05 s timeout: every
        # answer is forced out at the timeout with coverage 1/2.
        oracle = ServiceOracle(_cluster_table())
        config = ClusterConfig(n_shards=2, n_cores_per_shard=4, rate=20.0,
                               duration=4.0, warmup=1.0,
                               aggregation_overhead=0.0, seed=4,
                               shard_timeout=0.05)
        summary = run_cluster_point(
            oracle, SequentialPolicy, config,
            faults=ClusterFaultPlan.slow_shard(1, 0.0, 4.0, 100.0),
        )
        assert summary.n_timed_out > 0
        assert summary.n_partial > 0
        assert summary.mean_coverage == pytest.approx(0.5, abs=0.05)
        # Answers go out at the timeout, not at the slow shard's pace.
        assert summary.p99_latency == pytest.approx(0.05, rel=0.05)

    def test_crashed_shard_releases_join_state(self):
        # Shard 1 is down the whole run; its sheds must release the
        # aggregator immediately (partial answers, no timeout needed).
        oracle = ServiceOracle(_cluster_table())
        config = ClusterConfig(n_shards=2, n_cores_per_shard=4, rate=20.0,
                               duration=4.0, warmup=1.0, seed=5)
        summary = run_cluster_point(
            oracle, SequentialPolicy, config,
            faults=ClusterFaultPlan({1: FaultSchedule.crash(0.0, 40.0)}),
        )
        assert summary.observed > 0
        assert summary.n_partial == summary.observed
        assert summary.n_shed > 0
        assert summary.unfinished == 0

    def test_fault_free_run_is_undegraded(self):
        oracle = ServiceOracle(_cluster_table())
        config = ClusterConfig(n_shards=2, n_cores_per_shard=4, rate=50.0,
                               duration=4.0, warmup=1.0, seed=6)
        summary = run_cluster_point(oracle, SequentialPolicy, config)
        assert summary.n_partial == 0
        assert summary.n_failed == 0
        assert summary.n_shed == 0
        assert summary.n_hedges == 0
        assert summary.n_full == summary.observed
        assert summary.mean_coverage == pytest.approx(1.0)


class TestHedging:
    def test_hedging_cuts_tail_under_slow_shard(self):
        oracle = ServiceOracle(_cluster_table())
        base = dict(n_shards=2, n_cores_per_shard=4, rate=50.0,
                    duration=4.0, warmup=1.0, aggregation_overhead=0.0,
                    seed=7)
        faults = ClusterFaultPlan.slow_shard(0, 0.0, 4.0, 50.0)
        plain = run_cluster_point(
            oracle, SequentialPolicy, ClusterConfig(**base), faults=faults)
        hedged = run_cluster_point(
            oracle, SequentialPolicy,
            ClusterConfig(hedge_delay=0.004, **base), faults=faults)
        assert hedged.n_hedges > 0
        assert hedged.n_hedge_wins > 0
        assert hedged.p99_latency < plain.p99_latency / 2

    def test_no_hedges_without_laggards(self):
        # Hedge delay far beyond every latency: the trigger never fires.
        oracle = ServiceOracle(_cluster_table())
        config = ClusterConfig(n_shards=2, n_cores_per_shard=4, rate=20.0,
                               duration=4.0, warmup=1.0, seed=8,
                               hedge_delay=30.0)
        summary = run_cluster_point(oracle, SequentialPolicy, config)
        assert summary.n_hedges == 0
        assert summary.n_hedge_wins == 0


class TestDeterminism:
    def test_load_point_sheds_reproducible(self):
        oracle = ServiceOracle(_constant_table(n_queries=50, t1=0.01))
        config = LoadPointConfig(rate=150.0, duration=5.0, warmup=1.0,
                                 n_cores=1, seed=11, deadline=0.05,
                                 max_queue_length=8)
        a = run_load_point(oracle, SequentialPolicy(), config)
        b = run_load_point(oracle, SequentialPolicy(), config)
        assert a.n_shed == b.n_shed
        assert a.shed_rate == b.shed_rate
        assert a.goodput == b.goodput
        assert a.p99_latency == b.p99_latency  # reprolint: disable=R004 -- bit-identical replay is the property under test

    def test_cluster_robustness_reproducible(self):
        oracle = ServiceOracle(_cluster_table())
        config = ClusterConfig(n_shards=3, n_cores_per_shard=2, rate=100.0,
                               duration=4.0, warmup=1.0, seed=12,
                               deadline=0.05, shard_timeout=0.08,
                               hedge_delay=0.01)
        faults = ClusterFaultPlan.slow_shard(1, 1.0, 3.0, 10.0)
        a = run_cluster_point(oracle, SequentialPolicy, config, faults=faults)
        b = run_cluster_point(oracle, SequentialPolicy, config, faults=faults)
        assert a.n_shed == b.n_shed
        assert a.n_partial == b.n_partial
        assert a.n_timed_out == b.n_timed_out
        assert a.n_hedges == b.n_hedges
        assert a.n_hedge_wins == b.n_hedge_wins
        assert a.p99_latency == b.p99_latency  # reprolint: disable=R004 -- bit-identical replay is the property under test
        assert a.mean_coverage == b.mean_coverage


class TestCensoredTailsVisible:
    def test_unfinished_counted_and_warned(self):
        # Service times (50 s) dwarf the drain limit (10x a 1 s horizon):
        # the second query cannot finish before the drain trips.
        oracle = ServiceOracle(_constant_table(n_queries=4, t1=50.0))
        config = ClusterConfig(n_shards=1, n_cores_per_shard=1, rate=2.0,
                               duration=1.0, warmup=0.0, seed=13)
        with pytest.warns(RuntimeWarning, match="still in flight"):
            summary = run_cluster_point(
                oracle, SequentialPolicy, config,
                arrivals=TraceArrivals([0.1, 0.2]),
            )
        assert summary.unfinished == 1

    def test_empty_run_tail_amplification_is_nan(self):
        oracle = ServiceOracle(_cluster_table())
        config = ClusterConfig(n_shards=2, n_cores_per_shard=2, rate=1.0,
                               duration=1.0, warmup=0.0, seed=14)
        summary = run_cluster_point(
            oracle, SequentialPolicy, config, arrivals=TraceArrivals([]))
        assert summary.observed == 0
        assert math.isnan(summary.tail_amplification)
        assert math.isnan(summary.p99_latency)


class TestExpectedLatency:
    def test_prediction_preferred_over_truth(self):
        table = _constant_table(n_queries=4, t1=1.0)
        oracle = ServiceOracle(table, predicted_latencies=[0.5, 0.5, 0.5, 0.5])
        assert oracle.expected_sequential_latency(0) == pytest.approx(0.5)
        assert ServiceOracle(table).expected_sequential_latency(0) == (
            pytest.approx(1.0)
        )

    def test_budget_aware_shedding_uses_prediction(self):
        # Predicted 0.1 against deadline 0.5: served even though the true
        # t1 (1.0) would blow the budget — the shedder only knows the
        # prediction.
        table = _constant_table(n_queries=2, t1=1.0)
        oracle = ServiceOracle(table, predicted_latencies=[0.1, 0.1])
        sim = Simulator()
        metrics = MetricsCollector(warmup=0.0, horizon=100.0, n_cores=1)
        server = IndexServerModel(sim, oracle, SequentialPolicy(), 1, metrics,
                                  deadline=0.5)
        sim.schedule_at(0.0, lambda: server.submit(0))
        sim.run()
        assert metrics.n_shed == 0
        assert metrics.n_observed == 1


class TestFixedPolicyInteraction:
    def test_wide_fixed_policy_sheds_more_than_sequential(self):
        # Fixed-4 inflates CPU (speedup 3.0 at degree 4), so it saturates
        # earlier and sheds more at an over-capacity arrival rate.
        oracle = ServiceOracle(_constant_table(n_queries=100, t1=0.01))
        config = LoadPointConfig(rate=450.0, duration=10.0, warmup=2.0,
                                 n_cores=4, seed=15, deadline=0.05)
        wide = run_load_point(oracle, FixedPolicy(4), config)
        narrow = run_load_point(oracle, SequentialPolicy(), config)
        assert wide.shed_rate > narrow.shed_rate

"""Tests for Query parsing/normalization and the TopK heap."""

import numpy as np
import pytest

from repro.engine.query import MatchMode, Query
from repro.engine.topk import TopK
from repro.errors import ExecutionError, QueryError


class TestQuery:
    def test_terms_deduped_and_sorted(self):
        q = Query.of([5, 2, 5, 9])
        assert q.term_ids == (2, 5, 9)
        assert q.n_terms == 3

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            Query.of([])

    def test_negative_term_rejected(self):
        with pytest.raises(QueryError):
            Query.of([-1])

    def test_bad_k_rejected(self):
        with pytest.raises(QueryError):
            Query.of([1], k=0)
        with pytest.raises(QueryError):
            Query.of([1], k=True)

    def test_bad_mode_rejected(self):
        with pytest.raises(QueryError):
            Query(term_ids=(1,), mode="all")

    def test_default_mode_is_conjunctive(self):
        assert Query.of([1]).mode is MatchMode.ALL

    def test_immutability(self):
        q = Query.of([1])
        with pytest.raises(Exception):
            q.k = 5


class TestTopK:
    def test_keeps_k_best(self):
        topk = TopK(3)
        for doc_id, score in enumerate([1.0, 5.0, 3.0, 4.0, 2.0]):
            topk.offer(score, doc_id)
        assert topk.doc_ids() == [1, 3, 2]
        assert topk.scores() == [5.0, 4.0, 3.0]

    def test_threshold_before_full_is_minus_inf(self):
        topk = TopK(2)
        topk.offer(1.0, 0)
        assert topk.threshold == float("-inf")
        topk.offer(2.0, 1)
        assert topk.threshold == 1.0

    def test_tie_prefers_lower_doc_id(self):
        topk = TopK(1)
        topk.offer(1.0, 5)
        admitted = topk.offer(1.0, 9)  # same score, higher id: loses
        assert not admitted
        admitted = topk.offer(1.0, 2)  # same score, lower id: wins
        assert admitted
        assert topk.doc_ids() == [2]

    def test_results_sorted_desc_then_id_asc(self):
        topk = TopK(4)
        topk.offer(1.0, 10)
        topk.offer(1.0, 3)
        topk.offer(2.0, 7)
        assert topk.results() == [(7, 2.0), (3, 1.0), (10, 1.0)]

    def test_offer_many_matches_sequential_offers(self, rng):
        scores = rng.random(200)
        doc_ids = np.arange(200)
        batched = TopK(10)
        batched.offer_many(scores, doc_ids)
        single = TopK(10)
        for s, d in zip(scores, doc_ids):
            single.offer(float(s), int(d))
        assert batched.results() == single.results()

    def test_offer_many_empty(self):
        topk = TopK(3)
        assert topk.offer_many(np.empty(0), np.empty(0, dtype=np.int64)) == 0

    def test_offer_many_mismatched_rejected(self):
        with pytest.raises(ExecutionError):
            TopK(3).offer_many(np.zeros(2), np.zeros(3, dtype=np.int64))

    def test_copy_is_independent(self):
        topk = TopK(2)
        topk.offer(1.0, 0)
        clone = topk.copy()
        clone.offer(2.0, 1)
        assert len(topk) == 1 and len(clone) == 2

    def test_invalid_k_rejected(self):
        with pytest.raises(ExecutionError):
            TopK(0)

"""Tests for the deployment planner."""

import pytest

from repro.core.planner import plan_deployment
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def plan(small_system):
    slo = 3.0 * small_system.service_distribution.percentile(99)
    return plan_deployment(
        small_system,
        slo=slo,
        load_profile=[0.1, 0.3, 0.5, 0.3, 0.1],
        candidates=("sequential", "fixed-4", "adaptive"),
        duration=2.0,
        warmup=0.5,
    )


class TestPlanner:
    def test_all_candidates_assessed(self, plan):
        assert set(plan.assessments) == {"sequential", "fixed-4", "adaptive"}

    def test_hourly_p99_aligned_with_profile(self, plan):
        for assessment in plan.assessments.values():
            assert len(assessment.hourly_p99) == 5
            # Symmetric profile => symmetric distinct-load mapping.
            assert assessment.hourly_p99[0] == assessment.hourly_p99[4]
            assert assessment.hourly_p99[1] == assessment.hourly_p99[3]

    def test_recommendation_is_a_candidate(self, plan):
        assert plan.recommended in plan.assessments

    def test_adaptive_recommended_over_saturating_fixed(self, plan):
        """fixed-4 saturates inside this profile at small scale, so the
        planner must prefer adaptive (or sequential) over it."""
        assert plan.recommended != "fixed-4"

    def test_recommended_meets_slo_when_possible(self, plan):
        best = plan.assessments[plan.recommended]
        if any(a.fully_compliant for a in plan.assessments.values()):
            assert best.fully_compliant

    def test_headroom_positive(self, plan):
        for assessment in plan.assessments.values():
            assert assessment.headroom >= 0.0

    def test_table_rendering_marks_recommendation(self, plan):
        rendered = plan.to_table().render()
        assert plan.recommended + " *" in rendered

    def test_input_validation(self, small_system):
        with pytest.raises(ConfigurationError):
            plan_deployment(small_system, slo=-1.0, load_profile=[0.1])
        with pytest.raises(ConfigurationError):
            plan_deployment(small_system, slo=0.1, load_profile=[])
        with pytest.raises(ConfigurationError):
            plan_deployment(small_system, slo=0.1, load_profile=[0.1],
                            candidates=[])

    def test_impossible_slo_still_recommends_something(self, small_system):
        tiny = small_system.service_distribution.percentile(1) / 50
        plan = plan_deployment(
            small_system, slo=tiny, load_profile=[0.2],
            candidates=("sequential", "adaptive"),
            duration=1.5, warmup=0.3,
        )
        assert plan.recommended in plan.assessments
        assert not plan.assessments[plan.recommended].fully_compliant

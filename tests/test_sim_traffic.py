"""Regime-based traffic generator: validation, shapes, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.traffic import (
    BACKGROUND,
    FLASH_CROWD,
    QUERY_OF_DEATH,
    SHAPE_GAUSSIAN,
    SLOW_QUERY_FLOOD,
    Burst,
    ClassAwareQuerySampler,
    DiurnalProfile,
    RegimeTraffic,
    TrafficConfig,
)
from repro.util.rng import RngFactory


def _collect(traffic, horizon_s):
    """Drain a RegimeTraffic into (absolute time, class) pairs."""
    out = []
    now = 0.0
    while True:
        gap = traffic.next_interarrival()
        if not np.isfinite(gap):
            break
        now += gap
        if now >= horizon_s:
            break
        out.append((now, traffic.last_class))
    return out


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------


class TestValidation:
    def test_negative_base_rate_rejected(self):
        with pytest.raises(ConfigurationError, match="base_rate"):
            DiurnalProfile(base_rate=-1.0)

    def test_amplitude_bounds(self):
        with pytest.raises(ConfigurationError, match="amplitude"):
            DiurnalProfile(base_rate=10.0, amplitude=1.0)

    def test_zero_length_burst_rejected(self):
        with pytest.raises(ConfigurationError, match="duration_s"):
            Burst(kind=FLASH_CROWD, start_s=1.0, duration_s=0.0, peak_rate=5.0)

    def test_negative_burst_rate_rejected(self):
        with pytest.raises(ConfigurationError, match="peak_rate"):
            Burst(kind=FLASH_CROWD, start_s=1.0, duration_s=1.0, peak_rate=-2.0)

    def test_unknown_burst_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            Burst(kind="ddos", start_s=1.0, duration_s=1.0, peak_rate=5.0)

    def test_overlapping_bursts_of_same_kind_rejected(self):
        a = Burst(kind=FLASH_CROWD, start_s=1.0, duration_s=2.0, peak_rate=5.0)
        b = Burst(kind=FLASH_CROWD, start_s=2.0, duration_s=2.0, peak_rate=5.0)
        with pytest.raises(ConfigurationError, match="overlap"):
            TrafficConfig(
                background=DiurnalProfile(base_rate=10.0), bursts=(a, b)
            )

    def test_adjacent_bursts_allowed(self):
        # Half-open windows: [1, 3) and [3, 5) do not overlap.
        a = Burst(kind=FLASH_CROWD, start_s=1.0, duration_s=2.0, peak_rate=5.0)
        b = Burst(kind=FLASH_CROWD, start_s=3.0, duration_s=2.0, peak_rate=5.0)
        config = TrafficConfig(
            background=DiurnalProfile(base_rate=10.0), bursts=(a, b)
        )
        assert len(config.bursts) == 2


# ----------------------------------------------------------------------
# Rate envelopes
# ----------------------------------------------------------------------


class TestRates:
    def test_diurnal_rate_at_mean_and_peak(self):
        profile = DiurnalProfile(base_rate=100.0, amplitude=0.5, period_s=10.0)
        assert profile.rate_at(0.0) == pytest.approx(100.0)
        assert profile.rate_at(2.5) == pytest.approx(150.0)
        assert profile.max_rate == pytest.approx(150.0)

    def test_square_burst_window_is_half_open(self):
        burst = Burst(
            kind=FLASH_CROWD, start_s=2.0, duration_s=1.0, peak_rate=40.0
        )
        assert burst.rate_at(2.0) == pytest.approx(40.0)
        assert burst.rate_at(2.999) == pytest.approx(40.0)
        assert burst.rate_at(3.0) == 0.0
        assert burst.rate_at(1.999) == 0.0

    def test_gaussian_burst_peaks_at_center(self):
        burst = Burst(
            kind=FLASH_CROWD,
            start_s=2.0,
            duration_s=3.0,
            peak_rate=40.0,
            shape=SHAPE_GAUSSIAN,
        )
        center = 2.0 + 1.5
        assert burst.rate_at(center) == pytest.approx(40.0)
        assert burst.rate_at(2.1) < burst.rate_at(center)
        assert burst.rate_at(5.0) == 0.0


# ----------------------------------------------------------------------
# The composed arrival process
# ----------------------------------------------------------------------


class TestRegimeTraffic:
    HORIZON = 20.0

    def _config(self, with_burst=True):
        bursts = (
            (
                Burst(
                    kind=SLOW_QUERY_FLOOD,
                    start_s=5.0,
                    duration_s=4.0,
                    peak_rate=60.0,
                ),
            )
            if with_burst
            else ()
        )
        return TrafficConfig(
            background=DiurnalProfile(
                base_rate=80.0, amplitude=0.2, period_s=self.HORIZON
            ),
            bursts=bursts,
        )

    def test_deterministic_replay(self):
        a = _collect(
            RegimeTraffic(self._config(), RngFactory(7), horizon_s=self.HORIZON),
            self.HORIZON,
        )
        b = _collect(
            RegimeTraffic(self._config(), RngFactory(7), horizon_s=self.HORIZON),
            self.HORIZON,
        )
        assert a == b

    def test_different_seeds_differ(self):
        a = _collect(
            RegimeTraffic(self._config(), RngFactory(7), horizon_s=self.HORIZON),
            self.HORIZON,
        )
        b = _collect(
            RegimeTraffic(self._config(), RngFactory(8), horizon_s=self.HORIZON),
            self.HORIZON,
        )
        assert a != b

    def test_adding_a_burst_never_perturbs_background(self):
        """Per-component named streams: the background arrivals of a
        config with a burst are bit-identical to the same config without
        it — the burst only *adds* its own flow."""
        with_burst = _collect(
            RegimeTraffic(self._config(), RngFactory(7), horizon_s=self.HORIZON),
            self.HORIZON,
        )
        without = _collect(
            RegimeTraffic(
                self._config(with_burst=False), RngFactory(7),
                horizon_s=self.HORIZON,
            ),
            self.HORIZON,
        )
        background_times = [t for t, c in with_burst if c == BACKGROUND]
        assert background_times == [t for t, _ in without]

    def test_burst_arrivals_confined_to_window(self):
        arrivals = _collect(
            RegimeTraffic(self._config(), RngFactory(7), horizon_s=self.HORIZON),
            self.HORIZON,
        )
        flood_times = [t for t, c in arrivals if c == SLOW_QUERY_FLOOD]
        assert flood_times, "burst produced no arrivals"
        assert all(5.0 <= t < 9.0 for t in flood_times)
        classes = {c for _, c in arrivals}
        assert classes == {BACKGROUND, SLOW_QUERY_FLOOD}


# ----------------------------------------------------------------------
# Class-aware query sampling
# ----------------------------------------------------------------------


class TestClassAwareQuerySampler:
    T1 = np.array([0.1, 0.5, 0.2, 0.9, 0.3, 0.4, 0.8, 0.6, 0.7, 1.0])

    def test_death_is_most_expensive_without_predictions(self):
        sampler = ClassAwareQuerySampler(self.T1, RngFactory(0))
        assert sampler.death_index == 9
        assert sampler.sample(QUERY_OF_DEATH) == 9

    def test_flood_draws_from_heavy_set(self):
        sampler = ClassAwareQuerySampler(
            self.T1, RngFactory(0), heavy_fraction=0.3
        )
        heavy = set(int(i) for i in sampler.attack_indices)
        assert heavy == {6, 3, 9}  # top 3 by sequential latency
        draws = {sampler.sample(SLOW_QUERY_FLOOD) for _ in range(50)}
        assert draws <= heavy

    def test_predictions_retarget_attack_at_underprediction(self):
        # Residual t1 - pred: index 3 is perfectly predicted, index 0 is
        # wildly underpredicted despite being cheap in absolute terms.
        pred = self.T1.copy()
        pred[3] = 0.9  # exact
        pred[0] = 0.0  # residual 0.1
        pred[9] = 0.95  # residual 0.05
        pred[6] = 0.1  # residual 0.7 -> the new death query
        sampler = ClassAwareQuerySampler(
            self.T1, RngFactory(0), predicted_latencies=pred
        )
        assert sampler.death_index == 6
        assert 3 not in set(int(i) for i in sampler.attack_indices)

    def test_background_covers_whole_table(self):
        sampler = ClassAwareQuerySampler(self.T1, RngFactory(0))
        draws = {sampler.sample(None) for _ in range(400)}
        assert draws == set(range(10))

    def test_deterministic_for_seed(self):
        a = ClassAwareQuerySampler(self.T1, RngFactory(3))
        b = ClassAwareQuerySampler(self.T1, RngFactory(3))
        classes = [None, SLOW_QUERY_FLOOD, None, QUERY_OF_DEATH, None]
        assert [a.sample(c) for c in classes] == [b.sample(c) for c in classes]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="predicted_latencies"):
            ClassAwareQuerySampler(
                self.T1, RngFactory(0), predicted_latencies=self.T1[:5]
            )

    def test_empty_table_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            ClassAwareQuerySampler([], RngFactory(0))

    def test_bad_heavy_fraction_rejected(self):
        with pytest.raises(ConfigurationError, match="heavy_fraction"):
            ClassAwareQuerySampler(self.T1, RngFactory(0), heavy_fraction=0.0)

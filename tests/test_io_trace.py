"""Tests for index persistence and workload traces."""

import numpy as np
import pytest

from repro.engine.executor import Engine
from repro.errors import ConfigurationError, IndexError_
from repro.index.io import load_index, save_index
from repro.sim.arrivals import DeterministicArrivals, PoissonArrivals
from repro.sim.experiment import run_trace_point
from repro.sim.oracle import ServiceOracle
from repro.policies.fixed import SequentialPolicy
from repro.profiles.measurement import MeasurementConfig, measure_cost_table
from repro.workloads.queries import QueryGenerator, QueryWorkloadConfig
from repro.workloads.trace import WorkloadTrace


class TestIndexPersistence:
    def test_roundtrip_structure(self, tiny_index, tmp_path):
        path = save_index(tiny_index, tmp_path / "shard.npz")
        loaded = load_index(path)
        assert loaded.n_docs == tiny_index.n_docs
        assert loaded.n_terms == tiny_index.n_terms
        assert loaded.chunk_map.chunk_size == tiny_index.chunk_map.chunk_size
        assert loaded.bm25_params == tiny_index.bm25_params
        assert np.array_equal(loaded.doc_lengths, tiny_index.doc_lengths)
        assert np.allclose(loaded.static_ranks, tiny_index.static_ranks)

    def test_roundtrip_posting_lists(self, tiny_index, tmp_path):
        loaded = load_index(save_index(tiny_index, tmp_path / "shard.npz"))
        for term_id in list(tiny_index.lexicon)[:25]:
            original = tiny_index.lexicon.postings(term_id)
            restored = loaded.lexicon.postings(term_id)
            assert np.array_equal(original.doc_ids, restored.doc_ids)
            assert np.array_equal(original.freqs, restored.freqs)
            assert np.allclose(original.impacts, restored.impacts)
            assert np.array_equal(original.chunk_ids, restored.chunk_ids)

    def test_loaded_index_executes_identically(
        self, tiny_index, tmp_path, small_workbench
    ):
        loaded = load_index(save_index(tiny_index, tmp_path / "shard.npz"))
        original_engine = Engine(tiny_index)
        loaded_engine = Engine(loaded)
        generator = QueryGenerator(
            QueryWorkloadConfig(vocab_size=tiny_index.lexicon.vocab_size, seed=3)
        )
        for query in generator.sample_many(10):
            a = original_engine.execute(query, 2)
            b = loaded_engine.execute(query, 2)
            assert a.doc_ids == b.doc_ids
            assert a.latency == b.latency  # reprolint: disable=R004 -- save/load round-trip must be bit-identical

    def test_version_check(self, tiny_index, tmp_path):
        path = save_index(tiny_index, tmp_path / "shard.npz")
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["format_version"] = np.asarray([99])
        np.savez_compressed(path, **payload)
        with pytest.raises(IndexError_):
            load_index(path)


class TestWorkloadTrace:
    def _generator(self, seed=0):
        return QueryGenerator(QueryWorkloadConfig(vocab_size=500, seed=seed))

    def test_generate_respects_horizon(self, rng):
        trace = WorkloadTrace.generate(
            self._generator(), PoissonArrivals(200.0, rng), horizon=2.0
        )
        assert trace.horizon <= 2.0
        assert len(trace) > 100  # ~400 expected

    def test_deterministic_arrivals_exact_count(self):
        trace = WorkloadTrace.generate(
            self._generator(), DeterministicArrivals(10.0), horizon=1.0
        )
        assert len(trace) == 10

    def test_save_load_roundtrip(self, rng, tmp_path):
        trace = WorkloadTrace.generate(
            self._generator(seed=4), PoissonArrivals(100.0, rng), horizon=1.0
        )
        path = trace.save(tmp_path / "trace.jsonl")
        loaded = WorkloadTrace.load(path)
        assert np.allclose(loaded.times, trace.times)
        assert [q.term_ids for q in loaded.queries] == [
            q.term_ids for q in trace.queries
        ]
        assert [q.mode for q in loaded.queries] == [q.mode for q in trace.queries]

    def test_load_bad_record_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 1.0}\n', encoding="utf-8")
        with pytest.raises(ConfigurationError):
            WorkloadTrace.load(path)

    def test_unsorted_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadTrace(np.asarray([2.0, 1.0]),
                          list(self._generator().sample_many(2)))

    def test_window_rates(self):
        trace = WorkloadTrace.generate(
            self._generator(), DeterministicArrivals(10.0), horizon=2.0
        )
        rates = trace.window_rates(1.0)
        assert rates.sum() * 1.0 == len(trace)


class TestTraceReplay:
    def _oracle(self, small_engine, sample_queries):
        table = measure_cost_table(
            small_engine, sample_queries[:20],
            MeasurementConfig(degrees=(1, 2, 4), n_queries=20),
        )
        return ServiceOracle(table)

    def test_replay_deterministic(self, small_engine, sample_queries):
        oracle = self._oracle(small_engine, sample_queries)
        times = np.linspace(0.001, 0.5, 20)
        a, _ = run_trace_point(oracle, SequentialPolicy(), times, n_cores=4)
        b, _ = run_trace_point(oracle, SequentialPolicy(), times, n_cores=4)
        assert a.p99_latency == b.p99_latency  # reprolint: disable=R004 -- bit-identical replay is the property under test
        assert a.observed == 20

    def test_replay_with_query_pool(self, small_engine, sample_queries):
        oracle = self._oracle(small_engine, sample_queries)
        times = np.linspace(0.001, 0.5, 50)
        indices = np.arange(50) % oracle.n_queries
        summary, records = run_trace_point(
            oracle, SequentialPolicy(), times, query_indices=indices, n_cores=4
        )
        assert summary.observed == 50
        assert len(records) == 50
        assert all(r.latency > 0 for r in records)

    def test_replay_validates_inputs(self, small_engine, sample_queries):
        oracle = self._oracle(small_engine, sample_queries)
        with pytest.raises(ValueError):
            run_trace_point(oracle, SequentialPolicy(), [])
        with pytest.raises(ValueError):
            run_trace_point(oracle, SequentialPolicy(), [2.0, 1.0])
        with pytest.raises(ValueError):
            run_trace_point(oracle, SequentialPolicy(), [0.1],
                            query_indices=[999])

"""Tests for index persistence and workload traces."""

import numpy as np
import pytest

from repro.engine.executor import Engine
from repro.errors import ConfigurationError, IndexError_
from repro.index.io import load_index, save_index
from repro.sim.arrivals import DeterministicArrivals, PoissonArrivals
from repro.sim.experiment import run_trace_point
from repro.sim.oracle import ServiceOracle
from repro.policies.fixed import SequentialPolicy
from repro.profiles.measurement import MeasurementConfig, measure_cost_table
from repro.workloads.queries import QueryGenerator, QueryWorkloadConfig
from repro.workloads.trace import WorkloadTrace


class TestIndexPersistence:
    def test_roundtrip_structure(self, tiny_index, tmp_path):
        path = save_index(tiny_index, tmp_path / "shard.npz")
        loaded = load_index(path)
        assert loaded.n_docs == tiny_index.n_docs
        assert loaded.n_terms == tiny_index.n_terms
        assert loaded.chunk_map.chunk_size == tiny_index.chunk_map.chunk_size
        assert loaded.bm25_params == tiny_index.bm25_params
        assert np.array_equal(loaded.doc_lengths, tiny_index.doc_lengths)
        assert np.allclose(loaded.static_ranks, tiny_index.static_ranks)

    def test_roundtrip_posting_lists(self, tiny_index, tmp_path):
        loaded = load_index(save_index(tiny_index, tmp_path / "shard.npz"))
        for term_id in list(tiny_index.lexicon)[:25]:
            original = tiny_index.lexicon.postings(term_id)
            restored = loaded.lexicon.postings(term_id)
            assert np.array_equal(original.doc_ids, restored.doc_ids)
            assert np.array_equal(original.freqs, restored.freqs)
            assert np.allclose(original.impacts, restored.impacts)
            assert np.array_equal(original.chunk_ids, restored.chunk_ids)

    def test_loaded_index_executes_identically(
        self, tiny_index, tmp_path, small_workbench
    ):
        loaded = load_index(save_index(tiny_index, tmp_path / "shard.npz"))
        original_engine = Engine(tiny_index)
        loaded_engine = Engine(loaded)
        generator = QueryGenerator(
            QueryWorkloadConfig(vocab_size=tiny_index.lexicon.vocab_size, seed=3)
        )
        for query in generator.sample_many(10):
            a = original_engine.execute(query, 2)
            b = loaded_engine.execute(query, 2)
            assert a.doc_ids == b.doc_ids
            assert a.latency == b.latency  # reprolint: disable=R004 -- save/load round-trip must be bit-identical

    def test_version_check_v1(self, tiny_index, tmp_path):
        path = save_index(tiny_index, tmp_path / "shard.npz", format_version=1)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["format_version"] = np.asarray([99])
        np.savez_compressed(path, **payload)
        with pytest.raises(IndexError_):
            load_index(path)

    def test_version_check_v2(self, tiny_index, tmp_path):
        import json

        path = save_index(tiny_index, tmp_path / "shard_v2")
        meta_path = path / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(IndexError_):
            load_index(path)

    def test_unsupported_save_version_rejected(self, tiny_index, tmp_path):
        with pytest.raises(IndexError_):
            save_index(tiny_index, tmp_path / "shard", format_version=3)

    def test_large_vocab_roundtrip(self, tmp_path):
        # Regression for the vectorized columnar flatten: a vocabulary
        # much larger than the document count produces thousands of
        # short posting lists, the worst case for the old per-term copy
        # loop and the easiest place for an offsets off-by-one to hide.
        from repro.corpus.generator import CorpusConfig, generate_corpus
        from repro.index.builder import IndexConfig, build_index

        corpus = generate_corpus(
            CorpusConfig(n_docs=400, vocab_size=6_000, mean_doc_length=80, seed=5)
        )
        index = build_index(corpus, IndexConfig(chunk_size=64))
        for name, loaded in (
            ("v1", load_index(save_index(index, tmp_path / "big.npz", format_version=1))),
            ("v2", load_index(save_index(index, tmp_path / "big_v2"))),
        ):
            assert np.array_equal(
                loaded.lexicon.document_frequencies(),
                index.lexicon.document_frequencies(),
            ), name
            for term_id in list(index.lexicon)[:: max(1, len(index.lexicon) // 50)]:
                original = index.lexicon.postings(term_id)
                restored = loaded.lexicon.postings(term_id)
                assert np.array_equal(original.doc_ids, restored.doc_ids), name
                assert np.array_equal(original.impacts, restored.impacts), name

    def test_missing_path_rejected(self, tmp_path):
        with pytest.raises(IndexError_):
            load_index(tmp_path / "nothing_here")


class TestFormatV2:
    """The memory-mappable directory container."""

    def _queries(self, index, n=15):
        from repro.workloads.queries import QueryGenerator, QueryWorkloadConfig

        generator = QueryGenerator(
            QueryWorkloadConfig(vocab_size=index.lexicon.vocab_size, seed=7)
        )
        return generator.sample_many(n)

    def test_v1_v2_roundtrip_equivalent(self, tiny_index, tmp_path):
        v1 = load_index(save_index(tiny_index, tmp_path / "a.npz", format_version=1))
        v2 = load_index(save_index(tiny_index, tmp_path / "b"))
        for term_id in list(tiny_index.lexicon)[:25]:
            a = v1.lexicon.postings(term_id)
            b = v2.lexicon.postings(term_id)
            assert np.array_equal(a.doc_ids, b.doc_ids)
            assert np.array_equal(a.freqs, b.freqs)
            assert np.array_equal(a.impacts, b.impacts)

    def test_mmap_and_ram_execute_identically(self, tiny_index, tmp_path):
        path = save_index(tiny_index, tmp_path / "shard")
        engines = [
            Engine(index)
            for index in (
                tiny_index,
                load_index(path, mmap=True),
                load_index(path, mmap=False),
            )
        ]
        for query in self._queries(tiny_index):
            results = [engine.execute(query, 1) for engine in engines]
            for other in results[1:]:
                assert other.doc_ids == results[0].doc_ids
                assert other.latency == results[0].latency  # reprolint: disable=R004 -- mmap backing must not change results

    def test_mmap_columns_are_memory_mapped(self, tiny_index, tmp_path):
        path = save_index(tiny_index, tmp_path / "shard")
        index = load_index(path, mmap=True)
        columns = index.lexicon.columns()
        assert isinstance(columns["posting_doc_ids"], np.memmap)
        ram = load_index(path, mmap=False)
        assert not isinstance(ram.lexicon.columns()["posting_doc_ids"], np.memmap)

    def test_loaded_shard_resaves_identically(self, tiny_index, tmp_path):
        # LazyLexicon round-trip: saving a loaded shard reuses the
        # columnar arrays verbatim.
        first = save_index(tiny_index, tmp_path / "first")
        loaded = load_index(first)
        second = save_index(loaded, tmp_path / "second")
        for name in ("posting_doc_ids", "posting_impacts", "term_offsets"):
            a = np.load(first / f"{name}.npy")
            b = np.load(second / f"{name}.npy")
            assert np.array_equal(a, b)

    def test_missing_array_rejected(self, tiny_index, tmp_path):
        path = save_index(tiny_index, tmp_path / "shard")
        (path / "posting_freqs.npy").unlink()
        with pytest.raises(IndexError_):
            load_index(path)

    def test_truncated_array_rejected(self, tiny_index, tmp_path):
        path = save_index(tiny_index, tmp_path / "shard")
        (path / "posting_doc_ids.npy").write_bytes(b"\x93NUMPY")
        with pytest.raises(IndexError_):
            load_index(path)

    def test_missing_meta_rejected(self, tiny_index, tmp_path):
        path = save_index(tiny_index, tmp_path / "shard")
        (path / "meta.json").unlink()
        with pytest.raises(IndexError_):
            load_index(path)

    def test_malformed_meta_rejected(self, tiny_index, tmp_path):
        path = save_index(tiny_index, tmp_path / "shard")
        (path / "meta.json").write_text("{not json")
        with pytest.raises(IndexError_):
            load_index(path)

    def test_meta_missing_field_rejected(self, tiny_index, tmp_path):
        import json

        path = save_index(tiny_index, tmp_path / "shard")
        meta = json.loads((path / "meta.json").read_text())
        del meta["bm25"]
        (path / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(IndexError_):
            load_index(path)


class TestLazyLexicon:
    def test_df_answered_without_materializing(self, tiny_index, tmp_path):
        loaded = load_index(save_index(tiny_index, tmp_path / "shard"))
        lexicon = loaded.lexicon
        df = lexicon.document_frequencies()
        assert np.array_equal(df, tiny_index.lexicon.document_frequencies())
        some_term = next(iter(lexicon))
        assert lexicon.doc_frequency(some_term) == df[some_term]
        # Statistics come straight from the offsets: nothing materialized.
        assert "materialized=0" in repr(lexicon)
        lexicon.postings(some_term)
        assert "materialized=1" in repr(lexicon)

    def test_materialized_postings_cached(self, tiny_index, tmp_path):
        loaded = load_index(save_index(tiny_index, tmp_path / "shard"))
        term = next(iter(loaded.lexicon))
        assert loaded.lexicon.postings(term) is loaded.lexicon.postings(term)

    def test_read_only(self, tiny_index, tmp_path):
        loaded = load_index(save_index(tiny_index, tmp_path / "shard"))
        term = next(iter(tiny_index.lexicon))
        with pytest.raises(IndexError_):
            loaded.lexicon.add(tiny_index.lexicon.postings(term))

    def test_len_iter_contains(self, tiny_index, tmp_path):
        loaded = load_index(save_index(tiny_index, tmp_path / "shard"))
        assert len(loaded.lexicon) == len(tiny_index.lexicon)
        assert list(loaded.lexicon) == list(tiny_index.lexicon)
        present = next(iter(tiny_index.lexicon))
        assert present in loaded.lexicon
        assert loaded.lexicon.vocab_size + 1 not in loaded.lexicon
        absent_df = loaded.lexicon.doc_frequency(loaded.lexicon.vocab_size + 1)
        assert absent_df == 0
        assert loaded.lexicon.max_impact(loaded.lexicon.vocab_size + 1) == 0.0
        assert loaded.lexicon.postings_or_none(loaded.lexicon.vocab_size + 1) is None

    def test_bad_offsets_rejected(self, tiny_index, tmp_path):
        from repro.index.chunks import ChunkMap
        from repro.index.lexicon import LazyLexicon

        with pytest.raises(IndexError_):
            LazyLexicon(
                vocab_size=10,
                term_ids=np.asarray([1, 2], dtype=np.int64),
                term_offsets=np.asarray([0, 3], dtype=np.int64),  # needs 3 entries
                doc_ids=np.arange(5),
                freqs=np.ones(5, dtype=np.int64),
                impacts=np.ones(5),
                chunk_map=ChunkMap(8, 4),
            )

    def test_out_of_range_term_rejected(self, tmp_path):
        from repro.index.chunks import ChunkMap
        from repro.index.lexicon import LazyLexicon

        with pytest.raises(IndexError_):
            LazyLexicon(
                vocab_size=2,
                term_ids=np.asarray([5], dtype=np.int64),
                term_offsets=np.asarray([0, 1], dtype=np.int64),
                doc_ids=np.arange(1),
                freqs=np.ones(1, dtype=np.int64),
                impacts=np.ones(1),
                chunk_map=ChunkMap(8, 4),
            )

    def test_n_postings_does_not_materialize(self, tiny_index, tmp_path):
        loaded = load_index(save_index(tiny_index, tmp_path / "shard"))
        assert loaded.n_postings == tiny_index.n_postings
        assert "materialized=0" in repr(loaded.lexicon)


class TestLazyLexiconErrorPaths:
    """Typed errors for every way a shard's columns can be corrupt.

    Each tampering mode must surface as :class:`IndexError_` naming the
    offending file (so an operator can tell *which* column is bad), not
    as a raw ``OSError``/``ValueError`` from numpy or a silent
    mis-assembled lexicon.
    """

    def test_missing_column_file_names_the_column(self, tiny_index, tmp_path):
        path = save_index(tiny_index, tmp_path / "shard")
        (path / "term_ids.npy").unlink()
        with pytest.raises(IndexError_, match="term_ids.npy"):
            load_index(path)

    def test_truncated_npy_names_the_column(self, tiny_index, tmp_path):
        path = save_index(tiny_index, tmp_path / "shard")
        column = path / "posting_impacts.npy"
        column.write_bytes(column.read_bytes()[:16])
        with pytest.raises(IndexError_, match="posting_impacts.npy"):
            load_index(path)

    def test_truncated_npy_rejected_under_mmap_and_ram(
        self, tiny_index, tmp_path
    ):
        path = save_index(tiny_index, tmp_path / "shard")
        column = path / "posting_freqs.npy"
        column.write_bytes(column.read_bytes()[:40])
        for mmap in (True, False):
            with pytest.raises(IndexError_):
                load_index(path, mmap=mmap)

    def test_meta_columns_length_mismatch_rejected(self, tiny_index, tmp_path):
        # term_offsets must have exactly len(term_ids) + 1 entries; a
        # shard whose offsets column was swapped for a shorter array
        # parses as valid .npy files but must fail lexicon assembly.
        path = save_index(tiny_index, tmp_path / "shard")
        offsets = np.load(path / "term_offsets.npy")
        np.save(path / "term_offsets.npy", offsets[:-2])
        with pytest.raises(IndexError_, match="entries"):
            load_index(path)

    def test_term_id_outside_vocab_rejected(self, tiny_index, tmp_path):
        # meta.json's vocab_size and the term_ids column disagree: the
        # lexicon refuses rather than indexing out of bounds later.
        import json

        path = save_index(tiny_index, tmp_path / "shard")
        meta = json.loads((path / "meta.json").read_text())
        meta["vocab_size"] = 1
        (path / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(IndexError_, match="outside"):
            load_index(path)

    def test_v1_v2_v1_resave_roundtrip_under_mmap(self, tiny_index, tmp_path):
        # Format migration both ways with a memory-mapped middle hop:
        # v1 archive -> v2 shard -> load with mmap_mode="r" -> resave as
        # v1. Saving must accept np.memmap-backed columns, and every
        # posting column must survive the full loop bit-identically.
        first = save_index(tiny_index, tmp_path / "first.npz", format_version=1)
        v2 = save_index(load_index(first), tmp_path / "middle")
        mapped = load_index(v2, mmap=True)
        assert isinstance(mapped.lexicon.columns()["posting_doc_ids"], np.memmap)
        second = save_index(mapped, tmp_path / "second.npz", format_version=1)
        final = load_index(second)
        assert final.bm25_params == tiny_index.bm25_params
        assert final.chunk_map.chunk_size == tiny_index.chunk_map.chunk_size
        assert np.array_equal(
            final.lexicon.document_frequencies(),
            tiny_index.lexicon.document_frequencies(),
        )
        with np.load(first) as a, np.load(second) as b:
            assert set(a.files) == set(b.files)
            for name in a.files:
                assert np.array_equal(a[name], b[name]), name

    def test_mmap_loaded_shard_queries_match_original(
        self, tiny_index, tmp_path
    ):
        path = save_index(tiny_index, tmp_path / "shard")
        mapped = load_index(path, mmap=True)
        original = Engine(tiny_index)
        loaded = Engine(mapped)
        generator = QueryGenerator(
            QueryWorkloadConfig(vocab_size=tiny_index.lexicon.vocab_size, seed=11)
        )
        for query in generator.sample_many(8):
            a = original.execute(query, 2)
            b = loaded.execute(query, 2)
            assert a.doc_ids == b.doc_ids


class TestWorkloadTrace:
    def _generator(self, seed=0):
        return QueryGenerator(QueryWorkloadConfig(vocab_size=500, seed=seed))

    def test_generate_respects_horizon(self, rng):
        trace = WorkloadTrace.generate(
            self._generator(), PoissonArrivals(200.0, rng), horizon=2.0
        )
        assert trace.horizon <= 2.0
        assert len(trace) > 100  # ~400 expected

    def test_deterministic_arrivals_exact_count(self):
        trace = WorkloadTrace.generate(
            self._generator(), DeterministicArrivals(10.0), horizon=1.0
        )
        assert len(trace) == 10

    def test_save_load_roundtrip(self, rng, tmp_path):
        trace = WorkloadTrace.generate(
            self._generator(seed=4), PoissonArrivals(100.0, rng), horizon=1.0
        )
        path = trace.save(tmp_path / "trace.jsonl")
        loaded = WorkloadTrace.load(path)
        assert np.allclose(loaded.times, trace.times)
        assert [q.term_ids for q in loaded.queries] == [
            q.term_ids for q in trace.queries
        ]
        assert [q.mode for q in loaded.queries] == [q.mode for q in trace.queries]

    def test_load_bad_record_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 1.0}\n', encoding="utf-8")
        with pytest.raises(ConfigurationError):
            WorkloadTrace.load(path)

    def test_unsorted_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadTrace(np.asarray([2.0, 1.0]),
                          list(self._generator().sample_many(2)))

    def test_window_rates(self):
        trace = WorkloadTrace.generate(
            self._generator(), DeterministicArrivals(10.0), horizon=2.0
        )
        rates = trace.window_rates(1.0)
        assert rates.sum() * 1.0 == len(trace)


class TestTraceReplay:
    def _oracle(self, small_engine, sample_queries):
        table = measure_cost_table(
            small_engine, sample_queries[:20],
            MeasurementConfig(degrees=(1, 2, 4), n_queries=20),
        )
        return ServiceOracle(table)

    def test_replay_deterministic(self, small_engine, sample_queries):
        oracle = self._oracle(small_engine, sample_queries)
        times = np.linspace(0.001, 0.5, 20)
        a, _ = run_trace_point(oracle, SequentialPolicy(), times, n_cores=4)
        b, _ = run_trace_point(oracle, SequentialPolicy(), times, n_cores=4)
        assert a.p99_latency == b.p99_latency  # reprolint: disable=R004 -- bit-identical replay is the property under test
        assert a.observed == 20

    def test_replay_with_query_pool(self, small_engine, sample_queries):
        oracle = self._oracle(small_engine, sample_queries)
        times = np.linspace(0.001, 0.5, 50)
        indices = np.arange(50) % oracle.n_queries
        summary, records = run_trace_point(
            oracle, SequentialPolicy(), times, query_indices=indices, n_cores=4
        )
        assert summary.observed == 50
        assert len(records) == 50
        assert all(r.latency > 0 for r in records)

    def test_replay_validates_inputs(self, small_engine, sample_queries):
        oracle = self._oracle(small_engine, sample_queries)
        with pytest.raises(ValueError):
            run_trace_point(oracle, SequentialPolicy(), [])
        with pytest.raises(ValueError):
            run_trace_point(oracle, SequentialPolicy(), [2.0, 1.0])
        with pytest.raises(ValueError):
            run_trace_point(oracle, SequentialPolicy(), [0.1],
                            query_indices=[999])

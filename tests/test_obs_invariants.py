"""Trace-backed invariant tests: spans must re-derive the aggregates.

These tests recompute experiment-level statistics *from the span trees*
and assert equality with what the metrics pipeline reports:

* E14's latency decomposition (latency = queueing + service) falls out
  of the ``queue`` / ``exec`` span durations of completed traces;
* E19's shed accounting (who was dropped, and why) falls out of the
  ``shed`` outcomes, including the conservation law
  ``completed + shed + in_flight == issued``;
* the cluster aggregator's full/partial/failed outcome counts fall out
  of the ``cluster`` root spans.

Any drift between what the simulator *does* and what it *reports* shows
up here as a mismatch between the two independent derivations.
"""

import numpy as np
import pytest

from repro.obs.registry import RunObserver
from repro.obs.spans import CLUSTER, QUERY, RecordingTracer
from repro.policies.adaptive import ThresholdTable
from repro.policies.fixed import FixedPolicy
from repro.policies.online import (
    OnlineAdaptivePolicy,
    OnlineControllerConfig,
    OnlineDegreeController,
)
from repro.sim.anomaly import AnomalyGuard, AnomalyGuardConfig, DegradationLevel
from repro.sim.cluster import ClusterConfig, run_cluster_point
from repro.sim.engine import Simulator
from repro.sim.experiment import LoadPointConfig, run_load_point
from repro.sim.metrics import MetricsCollector
from repro.sim.oracle import ServiceOracle
from repro.sim.server import IndexServerModel
from repro.sim.traffic import (
    SLOW_QUERY_FLOOD,
    Burst,
    ClassAwareQuerySampler,
    DiurnalProfile,
    RegimeTraffic,
    TrafficConfig,
)
from repro.util.rng import RngFactory

from tests.test_sim_server import _constant_table


def _traced_load_point(policy, config, table=None):
    """Run one load point with tracing on; return (summary, tracer)."""
    oracle = ServiceOracle(table if table is not None else _constant_table())
    observer = RunObserver(tracer=RecordingTracer())
    summary = run_load_point(oracle, policy, config, observer=observer)
    return summary, observer


class TestLatencyDecomposition:
    """E14 cross-validation: spans vs the reported summary."""

    def test_span_means_match_summary(self):
        config = LoadPointConfig(
            rate=2.5, duration=20.0, warmup=4.0, n_cores=4, seed=3
        )
        summary, observer = _traced_load_point(FixedPolicy(2), config)
        window = [
            t for t in observer.tracer.traces
            if t.completed and t.arrival_s >= config.warmup
        ]
        assert len(window) == summary.observed > 0
        queue = float(np.mean([t.queue_delay_s() for t in window]))
        latency = float(np.mean([t.latency_s for t in window]))
        service = float(np.mean([t.service_s() for t in window]))
        assert queue == pytest.approx(summary.mean_queue_delay, rel=1e-9)
        assert latency == pytest.approx(summary.mean_latency, rel=1e-9)
        # The decomposition the paper's E14 reports as
        # "service = latency - queueing" holds span-by-span, so it holds
        # for the means too.
        assert service == pytest.approx(
            summary.mean_latency - summary.mean_queue_delay, rel=1e-9
        )

    def test_decomposition_holds_per_trace(self):
        config = LoadPointConfig(
            rate=3.0, duration=10.0, warmup=1.0, n_cores=4, seed=5
        )
        _, observer = _traced_load_point(FixedPolicy(4), config)
        completed = [t for t in observer.tracer.traces if t.completed]
        assert completed
        for trace in completed:
            trace.root.validate()
            assert trace.queue_delay_s() + trace.service_s() == pytest.approx(
                trace.latency_s, abs=1e-12
            )

    def test_percentiles_match_summary(self):
        config = LoadPointConfig(
            rate=3.0, duration=20.0, warmup=4.0, n_cores=4, seed=11
        )
        summary, observer = _traced_load_point(FixedPolicy(2), config)
        window = [
            t.latency_s for t in observer.tracer.traces
            if t.completed and t.arrival_s >= config.warmup
        ]
        assert float(np.percentile(window, 50)) == pytest.approx(
            summary.p50_latency, rel=1e-9
        )
        assert float(np.percentile(window, 99)) == pytest.approx(
            summary.p99_latency, rel=1e-9
        )


class TestShedAccounting:
    """E19 cross-validation: shed outcomes vs the metrics counters."""

    def _overloaded_run(self, deadline=0.8, max_queue_length=4):
        # 4x overload on one core forces both deadline and admission
        # sheds; explicit arrivals keep the run tiny and exact.
        table = _constant_table(t1=0.5)
        oracle = ServiceOracle(table)
        simulator = Simulator()
        metrics = MetricsCollector(warmup=0.0, horizon=20.0, n_cores=1)
        tracer = RecordingTracer()
        server = IndexServerModel(
            simulator, oracle, FixedPolicy(1), 1, metrics,
            deadline=deadline, max_queue_length=max_queue_length,
            tracer=tracer,
        )
        for i, t in enumerate(np.linspace(0.0, 10.0, 80)):
            simulator.schedule_at(
                float(t), lambda i=i: server.submit(i % oracle.n_queries)
            )
        simulator.run()
        return metrics, tracer

    def test_shed_reasons_match_collector(self):
        metrics, tracer = self._overloaded_run()
        by_reason = {}
        for trace in tracer.traces:
            reason = trace.shed_reason
            if reason is not None:
                by_reason[reason] = by_reason.get(reason, 0) + 1
        assert by_reason == metrics.shed_by_reason
        assert sum(by_reason.values()) == metrics.n_shed > 0
        # Both shedding mechanisms actually fired in this scenario.
        assert set(by_reason) == {"admission", "deadline"}

    def test_conservation_law(self):
        metrics, tracer = self._overloaded_run()
        flows = metrics.conservation()
        assert (
            flows["completed"] + flows["shed"] + flows["in_flight"]
            == flows["issued"]
        )
        # The run drained, so every issued query produced exactly one
        # trace and the trace-derived flows agree with the counters.
        assert flows["in_flight"] == 0
        traces = tracer.traces
        assert len(traces) == flows["issued"]
        assert sum(t.completed for t in traces) == flows["completed"]
        assert sum(t.shed_reason is not None for t in traces) == flows["shed"]

    def test_summary_n_shed_matches_traces(self):
        config = LoadPointConfig(
            rate=30.0, duration=8.0, warmup=1.0, n_cores=2, seed=9,
            deadline=0.6, max_queue_length=8,
        )
        summary, observer = _traced_load_point(
            FixedPolicy(1), config, table=_constant_table(t1=0.2)
        )
        traces = observer.tracer.traces
        # The summary's shed count is warmup-windowed by arrival time;
        # apply the same filter to the spans.
        n_shed = sum(
            t.shed_reason is not None and t.arrival_s >= config.warmup
            for t in traces
        )
        assert n_shed == summary.n_shed > 0
        # Every trace is one of the three flow classes.
        assert all(t.completed or t.shed_reason is not None for t in traces)


class TestTimelineConsistency:
    def test_gauges_sample_monotone_counts(self):
        config = LoadPointConfig(
            rate=3.0, duration=10.0, warmup=2.0, n_cores=4, seed=2
        )
        _, observer = _traced_load_point(FixedPolicy(2), config)
        rows = observer.sampler.rows
        assert len(rows) >= 50  # ~100 samples per run by default
        times = [row["t_s"] for row in rows]
        assert times == sorted(times)
        for field in ("arrivals", "completions", "shed"):
            values = [row[field] for row in rows]
            assert values == sorted(values), f"{field} must be cumulative"
        assert all(row["queue_depth"] >= 0 for row in rows)
        assert all(0 <= row["busy_cores"] <= config.n_cores for row in rows)

    def test_degree_histogram_covers_observed_queries(self):
        config = LoadPointConfig(
            rate=2.0, duration=10.0, warmup=2.0, n_cores=4, seed=4
        )
        summary, observer = _traced_load_point(FixedPolicy(2), config)
        snapshot = observer.registry.snapshot()
        histogram = snapshot["histograms"]["granted_degree"]
        # The histogram folds in exactly the warmup-filtered records the
        # summary is computed from.
        assert histogram["n"] == summary.observed
        assert histogram["mean"] == pytest.approx(summary.mean_degree, rel=1e-9)


class TestClusterInvariants:
    def _traced_cluster(self, **overrides):
        config = ClusterConfig(
            n_shards=3, n_cores_per_shard=2, rate=4.0, duration=8.0,
            warmup=2.0, seed=13, **overrides,
        )
        tracer = RecordingTracer()
        table = _constant_table(t1=0.1)
        summary = run_cluster_point(
            ServiceOracle(table), lambda: FixedPolicy(1), config, tracer=tracer
        )
        cluster = [t for t in tracer.traces if t.root.name == CLUSTER]
        node = [t for t in tracer.traces if t.root.name == QUERY]
        return config, summary, cluster, node

    def test_outcome_counts_match_summary(self):
        config, summary, cluster, _ = self._traced_cluster()
        assert summary.unfinished == 0
        window = [t for t in cluster if t.arrival_s >= config.warmup]
        outcomes = {}
        for trace in window:
            outcomes[trace.outcome] = outcomes.get(trace.outcome, 0) + 1
        assert outcomes.get("full", 0) == summary.n_full
        assert outcomes.get("partial", 0) == summary.n_partial
        assert outcomes.get("failed", 0) == summary.n_failed
        assert summary.n_full == summary.observed > 0

    def test_every_cluster_trace_validates_with_one_attempt_per_shard(self):
        config, _, cluster, _ = self._traced_cluster()
        assert cluster
        for trace in cluster:
            trace.root.validate()
            assert trace.query_index == -1
            assert len(trace.root.children) == config.n_shards
            shards = sorted(s.attrs["shard"] for s in trace.root.children)
            assert shards == list(range(config.n_shards))
            # Fault-free wait-for-all: every shard attempt won.
            assert all(
                s.attrs["outcome"] == "won" for s in trace.root.children
            )

    def test_node_traces_carry_shard_server_ids(self):
        config, _, cluster, node = self._traced_cluster()
        servers = {t.server_id for t in node}
        assert servers == {f"shard{i}" for i in range(config.n_shards)}
        # Each shard served every cluster query.
        assert len(node) == config.n_shards * len(cluster)

    def test_quorum_answers_are_partial_in_traces(self):
        config, summary, cluster, _ = self._traced_cluster(quorum=2)
        assert summary.n_partial > 0
        window = [t for t in cluster if t.arrival_s >= config.warmup]
        partial = [t for t in window if t.outcome == "partial"]
        assert len(partial) == summary.n_partial
        for trace in partial:
            outcomes = [s.attrs["outcome"] for s in trace.root.children]
            assert outcomes.count("won") == 2
            assert outcomes.count("abandoned") == 1
            finalize = trace.root.events[-1]
            assert finalize.attrs["quorum"] == 2
            assert finalize.attrs["coverage"] == pytest.approx(2 / 3)


class TestRegimeClassShedAccounting:
    """E20 cross-validation: class shedding under an adversarial burst.

    A slow-query flood hits a guarded online run; the guard's class
    sheds are re-derived three independent ways — from the shed-outcome
    spans, from the ``anomaly.*`` lifecycle events, and from the guard's
    own transition log — and all derivations must agree.
    """

    WINDOW = 0.25
    BURST_START, BURST_END = 4.0, 10.0

    def _regime_run(self, traced=True):
        table = _constant_table(n_queries=20, t1=0.1, degrees=(1, 2, 4))
        streams = RngFactory(7)
        duration = 12.0
        traffic = TrafficConfig(
            background=DiurnalProfile(base_rate=20.0),
            bursts=(
                Burst(
                    SLOW_QUERY_FLOOD,
                    start_s=self.BURST_START,
                    duration_s=self.BURST_END - self.BURST_START,
                    peak_rate=60.0,
                ),
            ),
        )
        arrivals = RegimeTraffic(traffic, streams, horizon_s=duration)
        sampler = ClassAwareQuerySampler(
            table.sequential_latencies(), streams, heavy_fraction=0.2
        )
        policy = OnlineAdaptivePolicy(
            ThresholdTable.from_pairs([(2, 4), (4, 2), (8, 1)])
        )
        tracer = RecordingTracer() if traced else None
        controller = OnlineDegreeController(
            policy,
            OnlineControllerConfig(
                target_p99_s=0.4, window_s=self.WINDOW, step=0.3,
                deadband=0.1, min_scale=0.25, max_scale=1.0,
                shed_rate_high=0.02, min_samples=5,
            ),
            tracer=tracer,
        )
        guard = AnomalyGuard(
            AnomalyGuardConfig(
                slo_s=0.4, window_s=self.WINDOW, sla_epsilon=0.05,
                degraded_degree_cap=2, shedding_queue_cap=8,
                shed_classes=(SLOW_QUERY_FLOOD,), recovery_windows=2,
            ),
            policy=policy,
            tracer=tracer,
        )
        config = LoadPointConfig(
            rate=20.0, duration=duration, warmup=1.0, n_cores=4, seed=7,
            deadline=0.4, max_queue_length=64, slo=0.4,
        )
        summary = run_load_point(
            ServiceOracle(table), policy, config,
            arrivals=arrivals,
            observer=RunObserver(tracer=tracer) if traced else None,
            controllers=(controller, guard),
            query_sampler=sampler,
        )
        return summary, config, tracer, guard, sampler

    def _shedding_intervals(self, guard, horizon):
        """[start, end) windows during which the guard was SHEDDING."""
        intervals, start = [], None
        for when, level in guard.transitions:
            if level == DegradationLevel.SHEDDING and start is None:
                start = when
            elif level < DegradationLevel.SHEDDING and start is not None:
                intervals.append((start, when))
                start = None
        if start is not None:
            intervals.append((start, horizon))
        return intervals

    def test_class_sheds_confined_to_attack_flow_while_shedding(self):
        summary, config, tracer, guard, sampler = self._regime_run()
        class_sheds = [
            t for t in tracer.traces if t.shed_reason == "class"
        ]
        assert class_sheds, "the flood must trigger class shedding"
        # The ladder climbed one rung per window: degrade, then shed.
        levels = [level for _, level in guard.transitions]
        assert levels[:2] == [
            DegradationLevel.DEGRADED,
            DegradationLevel.SHEDDING,
        ]
        # Only attack-class arrivals carry attack query indices, and the
        # sampler confines those to the top heavy_fraction of the table.
        attack = {int(i) for i in sampler.attack_indices}
        assert all(t.query_index in attack for t in class_sheds)
        assert all(
            self.BURST_START <= t.arrival_s < self.BURST_END
            for t in class_sheds
        )
        # Class sheds happen exactly while the guard sits at SHEDDING.
        intervals = self._shedding_intervals(guard, config.duration)
        assert intervals
        for trace in class_sheds:
            assert any(
                lo <= trace.arrival_s < hi for lo, hi in intervals
            ), f"class shed at {trace.arrival_s} outside {intervals}"
        # And nothing was class-shed outside those intervals: every
        # attack arrival inside an interval was refused at the door.
        in_intervals = [
            t for t in tracer.traces
            if any(lo <= t.arrival_s < hi for lo, hi in intervals)
            and t.query_index in attack
        ]
        # Background traffic also draws heavy indices occasionally, so
        # completed heavy-index traces can exist inside the intervals —
        # but every *shed* with reason "class" is in the attack set and
        # every attack-class arrival in-interval was shed, which bounds
        # the two counts.
        assert len(class_sheds) <= len(in_intervals)

    def test_lifecycle_events_match_transition_log(self):
        _, config, tracer, guard, _ = self._regime_run()
        ladder = [
            e for e in tracer.lifecycle_events
            if e.name in ("anomaly.degrade", "anomaly.recover")
        ]
        assert len(ladder) == len(guard.transitions) > 0
        for event, (when, level) in zip(ladder, guard.transitions):
            assert event.time_s == when
            assert event.attrs["to"] == level.name.lower()
        # The from/to chain is contiguous: each event starts where the
        # previous one ended.
        for previous, event in zip(ladder, ladder[1:]):
            assert event.attrs["from"] == previous.attrs["to"]
        # The controller tightened at least once under the flood, and
        # all lifecycle events are emitted in virtual-time order.
        adjust = [
            e for e in tracer.lifecycle_events if e.name == "control.adjust"
        ]
        assert any(e.attrs["action"] == "tighten" for e in adjust)
        times = [e.time_s for e in tracer.lifecycle_events]
        assert times == sorted(times)

    def test_trace_counts_match_summary(self):
        summary, config, tracer, _, _ = self._regime_run()
        traces = tracer.traces
        # Every arrival resolved: completed or shed, nothing in flight.
        assert all(t.completed or t.shed_reason is not None for t in traces)
        n_shed = sum(
            t.shed_reason is not None and t.arrival_s >= config.warmup
            for t in traces
        )
        assert n_shed == summary.n_shed > 0
        n_completed = sum(
            t.completed and t.arrival_s >= config.warmup for t in traces
        )
        assert n_completed == summary.observed

    def test_traced_run_matches_untraced(self):
        traced, *_ = self._regime_run(traced=True)
        untraced, *_ = self._regime_run(traced=False)
        assert traced == untraced

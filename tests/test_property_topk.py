"""Property-based tests for the TopK heap (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.topk import TopK

offers = st.lists(
    st.tuples(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.integers(min_value=0, max_value=10_000),
    ),
    max_size=200,
)


def _reference_topk(pairs, k):
    """Oracle: full sort under (score desc, doc_id asc), dedup not needed."""
    ranked = sorted(pairs, key=lambda p: (-p[0], p[1]))
    return [(doc, score) for score, doc in ranked[:k]]


@given(pairs=offers, k=st.integers(min_value=1, max_value=20))
@settings(max_examples=200, deadline=None)
def test_topk_matches_full_sort(pairs, k):
    topk = TopK(k)
    for score, doc in pairs:
        topk.offer(score, doc)
    assert topk.results() == _reference_topk(pairs, k)


@given(pairs=offers, k=st.integers(min_value=1, max_value=20))
@settings(max_examples=100, deadline=None)
def test_topk_insensitive_to_offer_order(pairs, k):
    forward = TopK(k)
    backward = TopK(k)
    for score, doc in pairs:
        forward.offer(score, doc)
    for score, doc in reversed(pairs):
        backward.offer(score, doc)
    assert forward.results() == backward.results()


@given(pairs=offers, k=st.integers(min_value=1, max_value=20))
@settings(max_examples=100, deadline=None)
def test_offer_many_equals_offer_loop(pairs, k):
    looped = TopK(k)
    for score, doc in pairs:
        looped.offer(score, doc)
    batched = TopK(k)
    if pairs:
        scores = np.asarray([p[0] for p in pairs])
        docs = np.asarray([p[1] for p in pairs])
        batched.offer_many(scores, docs)
    assert batched.results() == looped.results()


@given(pairs=offers, k=st.integers(min_value=1, max_value=20))
@settings(max_examples=100, deadline=None)
def test_threshold_is_weakest_retained(pairs, k):
    topk = TopK(k)
    for score, doc in pairs:
        topk.offer(score, doc)
    if topk.full:
        assert topk.threshold == topk.results()[-1][1]
    else:
        assert topk.threshold == float("-inf")

"""Shared fixtures: one small workbench/system per test session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.generator import CorpusConfig, generate_corpus
from repro.core.controller import AdaptiveSearchSystem, SystemConfig
from repro.index.builder import IndexConfig, build_index
from repro.workloads.workbench import WorkbenchConfig, build_workbench


@pytest.fixture(scope="session")
def tiny_corpus():
    """A very small corpus for index/engine unit tests."""
    return generate_corpus(
        CorpusConfig(n_docs=800, vocab_size=1_500, mean_doc_length=120, seed=11)
    )


@pytest.fixture(scope="session")
def tiny_index(tiny_corpus):
    return build_index(tiny_corpus, IndexConfig(chunk_size=64))


@pytest.fixture(scope="session")
def small_workbench():
    """The standard small workbench (4k docs)."""
    return build_workbench(WorkbenchConfig.small(seed=0))


@pytest.fixture(scope="session")
def small_engine(small_workbench):
    return small_workbench.engine


@pytest.fixture(scope="session")
def sample_queries(small_workbench):
    """A fixed sample of 60 realistic queries on the small workbench."""
    return small_workbench.query_generator("test-queries").sample_many(60)


@pytest.fixture(scope="session")
def small_system(small_workbench):
    """A profiled AdaptiveSearchSystem over the small workbench.

    Degrees trimmed to keep profiling fast; 250 queries is enough for
    stable class profiles at this scale.
    """
    return AdaptiveSearchSystem.from_workbench(
        small_workbench,
        SystemConfig(n_queries=250, degrees=(1, 2, 4, 8), n_cores=8, seed=0),
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)

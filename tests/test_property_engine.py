"""Property-based differential testing of the engine on random corpora.

Hypothesis generates miniature corpora and queries; on every one, the
engine (exhaustive and safe-termination, sequential and parallel) must
agree with the brute-force reference searcher.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.generator import CorpusConfig, generate_corpus
from repro.engine.executor import Engine, EngineConfig
from repro.engine.query import MatchMode, Query
from repro.engine.reference import brute_force_search
from repro.engine.termination import TerminationConfig
from repro.index.builder import IndexConfig, build_index


def _build(seed: int, n_docs: int, vocab: int, chunk_size: int):
    corpus = generate_corpus(
        CorpusConfig(
            n_docs=n_docs,
            vocab_size=vocab,
            mean_doc_length=30,
            doc_length_sigma=0.5,
            min_doc_length=4,
            max_doc_length=120,
            seed=seed,
        )
    )
    index = build_index(corpus, IndexConfig(chunk_size=chunk_size))
    exhaustive = Engine(
        index,
        EngineConfig(
            termination=TerminationConfig(match_budget=None, use_score_bound=False)
        ),
    )
    safe = Engine(
        index,
        EngineConfig(
            termination=TerminationConfig(match_budget=None, use_score_bound=True)
        ),
    )
    return index, exhaustive, safe


corpus_params = st.tuples(
    st.integers(0, 10_000),  # seed
    st.integers(30, 250),  # n_docs
    st.integers(10, 60),  # vocab
    st.integers(5, 64),  # chunk size
)


@given(
    params=corpus_params,
    query_terms=st.lists(st.integers(0, 59), min_size=1, max_size=4),
    k=st.integers(1, 15),
    mode=st.sampled_from([MatchMode.ALL, MatchMode.ANY]),
    degree=st.sampled_from([1, 2, 3, 5, 8]),
)
@settings(max_examples=30, deadline=None)
def test_engine_agrees_with_brute_force_everywhere(
    params, query_terms, k, mode, degree
):
    seed, n_docs, vocab, chunk_size = params
    index, exhaustive, safe = _build(seed, n_docs, vocab, chunk_size)
    query = Query.of([t % vocab for t in query_terms], k=k, mode=mode)
    expected = brute_force_search(index, query)
    expected_ids = [d for d, _ in expected]
    expected_scores = [s for _, s in expected]

    for engine in (exhaustive, safe):
        result = engine.execute(query, degree)
        assert result.doc_ids == expected_ids
        assert np.allclose(result.scores, expected_scores)


@given(
    params=corpus_params,
    query_terms=st.lists(st.integers(0, 59), min_size=1, max_size=3),
    budget=st.integers(1, 64),
    degree=st.sampled_from([2, 4, 7]),
)
@settings(max_examples=25, deadline=None)
def test_budget_parallel_dominates_sequential_everywhere(
    params, query_terms, budget, degree
):
    seed, n_docs, vocab, chunk_size = params
    corpus_index, _, _ = _build(seed, n_docs, vocab, chunk_size)
    engine = Engine(
        corpus_index,
        EngineConfig(termination=TerminationConfig(match_budget=budget)),
    )
    query = Query.of([t % vocab for t in query_terms], k=10)
    trace = engine.trace(query)
    sequential = engine.execute_trace(trace, 1)
    parallel = engine.execute_trace(trace, degree)
    # Parallel evaluates a superset of chunks: ranked scores dominate and
    # work never shrinks.
    assert parallel.chunks_evaluated >= sequential.chunks_evaluated
    for p_score, s_score in zip(parallel.scores, sequential.scores):
        assert p_score >= s_score - 1e-12

"""Determinism regression: tracing must never change results.

The observability layer is read-only by design — span recording draws
no randomness and schedules no events, and the timeline sampler only
reads instruments. These tests pin that property end-to-end by running
the same workloads traced and untraced and asserting the *serialized*
results are identical, byte for byte (string comparison also sidesteps
``NaN != NaN``, which breaks naive dataclass equality for summaries
without a deadline).

The second half keeps ``src/repro/obs`` itself honest: the reprolint
gate must pass over it with no suppression comments and no baseline.
"""

from pathlib import Path

import pytest

from repro.harness.context import ExperimentContext, Scale, _ScaleParams
from repro.harness.registry import run_experiment
from repro.obs.registry import RunObserver
from repro.obs.spans import RecordingTracer
from repro.policies.fixed import FixedPolicy
from repro.sim.cluster import ClusterConfig, run_cluster_point
from repro.sim.experiment import LoadPointConfig, run_load_point
from repro.sim.faults import ClusterFaultPlan, FaultSchedule, FaultWindow
from repro.sim.oracle import ServiceOracle
from repro.util.serde import dumps
from tools.reprolint import lint_paths

from tests.test_sim_server import _constant_table

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Shrunken scale for the experiment-level regression: same code paths
#: as the real small-scale runs, a fraction of the virtual time.
_TINY = _ScaleParams(
    n_profile_queries=300,
    sim_duration=1.2,
    sim_warmup=0.3,
    utilization_grid=(0.1, 0.3),
    capacity_duration=3.0,
)


def _tiny_context(tracer=None):
    ctx = ExperimentContext(scale=Scale.SMALL, tracer=tracer)
    ctx.params = _TINY
    return ctx


class TestTracedRunsAreBitIdentical:
    def test_load_point_summary(self):
        # No deadline: goodput/slo_attainment are NaN, the case where a
        # naive equality comparison would fail even for identical runs.
        oracle = ServiceOracle(_constant_table())
        config = LoadPointConfig(rate=3.0, duration=6.0, warmup=1.0,
                                 n_cores=4, seed=17)
        untraced = run_load_point(oracle, FixedPolicy(2), config)
        traced = run_load_point(
            oracle, FixedPolicy(2), config,
            observer=RunObserver(tracer=RecordingTracer()),
        )
        assert dumps(untraced) == dumps(traced)

    def test_load_point_summary_with_shedding(self):
        oracle = ServiceOracle(_constant_table(t1=0.3))
        config = LoadPointConfig(rate=20.0, duration=6.0, warmup=1.0,
                                 n_cores=2, seed=23, deadline=0.5,
                                 max_queue_length=6)
        untraced = run_load_point(oracle, FixedPolicy(1), config)
        traced = run_load_point(
            oracle, FixedPolicy(1), config,
            observer=RunObserver(tracer=RecordingTracer()),
        )
        assert dumps(untraced) == dumps(traced)

    def test_cluster_summary_with_hedging_quorum_and_faults(self):
        oracle = ServiceOracle(_constant_table(t1=0.05))
        config = ClusterConfig(
            n_shards=3, n_cores_per_shard=2, rate=8.0, duration=6.0,
            warmup=1.0, seed=29, quorum=2, shard_timeout=0.8,
            hedge_delay=0.2, max_queue_length=16,
        )
        faults = ClusterFaultPlan({
            1: FaultSchedule([FaultWindow(2.0, 3.0, multiplier=4.0)]),
        })
        untraced = run_cluster_point(
            oracle, lambda: FixedPolicy(1), config, faults=faults
        )
        traced = run_cluster_point(
            oracle, lambda: FixedPolicy(1), config, faults=faults,
            tracer=RecordingTracer(),
        )
        assert dumps(untraced) == dumps(traced)

    @pytest.mark.parametrize("experiment_id", ["e05", "e09"])
    def test_experiment_result_json(self, experiment_id):
        """E5 (fixed-degree sweep) and E9 (bursty arrivals) produce the
        same result JSON with tracing on — the full harness path, at a
        shrunken scale."""
        untraced = run_experiment(experiment_id, _tiny_context())
        tracer = RecordingTracer()
        traced = run_experiment(experiment_id, _tiny_context(tracer=tracer))
        assert dumps(untraced.to_json()) == dumps(traced.to_json())
        # The traced run really did record: one trace per simulated
        # query, grouped into one bucket per load point.
        assert len(tracer.runs) > 1
        assert tracer.traces


class TestObsPassesLintCleanly:
    """src/repro/obs must hold the determinism bar without exceptions."""

    def test_reprolint_suppression_free(self):
        result = lint_paths([str(REPO_ROOT / "src" / "repro" / "obs")])
        assert result.files_scanned >= 5
        assert result.parse_errors == []
        assert result.findings == []
        # Clean by construction, not by silencing.
        assert result.suppressed == []

    def test_no_disable_comments_in_sources(self):
        for path in (REPO_ROOT / "src" / "repro" / "obs").rglob("*.py"):
            assert "reprolint: disable" not in path.read_text(), path

"""End-to-end integration: corpus -> index -> engine -> profile -> policy
-> simulation, asserting the paper's qualitative claims hold on a fresh
(small) stack built inside the test."""

import pytest

from repro.core.controller import AdaptiveSearchSystem, SystemConfig
from repro.corpus.generator import CorpusConfig
from repro.index.builder import IndexConfig
from repro.workloads.queries import QueryWorkloadConfig
from repro.workloads.workbench import WorkbenchConfig, build_workbench


@pytest.fixture(scope="module")
def system():
    workbench = build_workbench(
        WorkbenchConfig(
            corpus=CorpusConfig(n_docs=6_000, vocab_size=8_000, seed=21),
            index=IndexConfig(chunk_size=128),
            workload=QueryWorkloadConfig(seed=21),
            seed=21,
        )
    )
    return AdaptiveSearchSystem.from_workbench(
        workbench,
        SystemConfig(n_queries=300, degrees=(1, 2, 4, 8), n_cores=8, seed=21),
    )


def test_service_times_heavy_tailed(system):
    assert system.service_distribution.tail_ratio() > 4.0


def test_long_queries_parallelize_better(system):
    profile = system.profile
    assert profile.speedup(4, 2) > 1.5 * profile.speedup(4, 0)


def test_parallelism_costs_work(system):
    assert system.profile.work_inflation(8) > system.profile.work_inflation(2) > 1.0


def test_threshold_table_monotone_from_real_profile(system):
    degrees = [system.threshold_table.degree_for(n) for n in range(1, 12)]
    assert degrees == sorted(degrees, reverse=True)
    assert degrees[0] > 1


def test_headline_envelope_tracking(system):
    """The paper's main claim at integration scale."""
    comparison = system.sweep(
        ["sequential", "fixed-4", "adaptive"],
        [0.1, 0.5, 0.8],
        duration=4.0,
        warmup=1.0,
    )
    p99_seq = comparison.p99("sequential")
    p99_fx4 = comparison.p99("fixed-4")
    p99_ada = comparison.p99("adaptive")
    # Low load: adaptive ~ fixed-4, much better than sequential.
    assert p99_ada[0] < 0.7 * p99_seq[0]
    # High load: adaptive ~ sequential, much better than fixed-4.
    assert p99_ada[-1] < 0.5 * p99_fx4[-1]
    assert p99_ada[-1] < 1.3 * p99_seq[-1]


def test_degree_mix_shifts_with_load(system):
    low = system.run_point("adaptive", system.rate_for_utilization(0.1),
                           duration=3.0, warmup=0.5)
    high = system.run_point("adaptive", system.rate_for_utilization(0.8),
                            duration=3.0, warmup=0.5)
    assert low.mean_degree > high.mean_degree


def test_oracle_no_worse_tail_with_less_cpu(system):
    comparison = system.sweep(
        ["adaptive", "oracle"], [0.3], duration=4.0, warmup=1.0
    )
    adaptive = comparison.summaries["adaptive"][0]
    oracle = comparison.summaries["oracle"][0]
    assert oracle.mean_degree <= adaptive.mean_degree
    # Oracle spends notably less CPU; its tail stays in the same band
    # (queries just under the length cutoff run sequentially, so it can
    # trail plain adaptive slightly at the P99).
    assert oracle.p99_latency <= 1.35 * adaptive.p99_latency

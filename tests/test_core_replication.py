"""Tests for multi-seed replication and the Little's-law checker."""

import numpy as np
import pytest

from repro.analysis.queueing_theory import littles_law_gap
from repro.core.replication import (
    compare_policies_replicated,
    replicate_load_point,
)
from repro.errors import AnalysisError, ConfigurationError


class TestReplication:
    def test_values_one_per_seed(self, small_system):
        replicated = replicate_load_point(
            small_system, "sequential", 0.2, seeds=[1, 2, 3],
            duration=2.0, warmup=0.5,
        )
        assert len(replicated.values) == 3
        assert replicated.ci.low <= replicated.mean <= replicated.ci.high

    def test_same_seed_gives_same_value(self, small_system):
        replicated = replicate_load_point(
            small_system, "sequential", 0.2, seeds=[5, 5],
            duration=2.0, warmup=0.5,
        )
        assert replicated.values[0] == replicated.values[1]

    def test_requires_two_seeds(self, small_system):
        with pytest.raises(ConfigurationError):
            replicate_load_point(small_system, "sequential", 0.2, seeds=[1])

    def test_unknown_metric_rejected(self, small_system):
        with pytest.raises(AnalysisError):
            replicate_load_point(
                small_system, "sequential", 0.2, seeds=[1, 2],
                metric="nonexistent", duration=2.0, warmup=0.5,
            )

    def test_mean_metric_supported(self, small_system):
        replicated = replicate_load_point(
            small_system, "adaptive", 0.2, seeds=[1, 2],
            metric="mean_latency", duration=2.0, warmup=0.5,
        )
        assert replicated.metric == "mean_latency"
        assert all(v > 0 for v in replicated.values)


class TestPairedComparison:
    def test_adaptive_significantly_beats_sequential_at_low_load(
        self, small_system
    ):
        comparison = compare_policies_replicated(
            small_system, "adaptive", "sequential", 0.1,
            seeds=[1, 2, 3, 4], duration=2.5, warmup=0.5,
        )
        assert comparison.mean_difference < 0
        assert comparison.a_better, (
            f"expected significance; CI {comparison.ci}"
        )

    def test_policy_vs_itself_not_significant(self, small_system):
        comparison = compare_policies_replicated(
            small_system, "sequential", "sequential", 0.2,
            seeds=[1, 2, 3], duration=2.0, warmup=0.5,
        )
        assert comparison.differences == (0.0, 0.0, 0.0) or not comparison.significant


class TestLittlesLaw:
    def test_zero_gap_when_consistent(self):
        # λ = 100/s, W = 0.05s  =>  L = 5.
        assert littles_law_gap(1_000, 10.0, 0.05, 5.0) == pytest.approx(0.0)

    def test_gap_detects_inconsistency(self):
        assert littles_law_gap(1_000, 10.0, 0.05, 10.0) == pytest.approx(0.5)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(AnalysisError):
            littles_law_gap(10, 0.0, 0.05, 1.0)

    def test_simulator_satisfies_littles_law(self, small_system):
        """End-to-end: λW from the sim's summary matches the utilization-
        derived population within tolerance."""
        rate = small_system.rate_for_utilization(0.3)
        summary = small_system.run_point("sequential", rate,
                                         duration=4.0, warmup=1.0)
        # For degree-1 queries, mean running population = utilization x cores;
        # queued population ~ throughput x mean queue delay.
        mean_population = (
            summary.utilization * small_system.n_cores
            + summary.throughput * summary.mean_queue_delay
        )
        gap = littles_law_gap(
            summary.observed,
            3.0,  # window = duration - warmup
            summary.mean_latency,
            mean_population,
        )
        assert gap < 0.1, f"Little's-law gap {gap:.3f}"

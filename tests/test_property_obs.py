"""Property-based tests for the span algebra under random schedules.

Hypothesis drives the simulated index server with random arrival
schedules, policies, robustness knobs, and fault windows; on every
schedule the recorded traces must satisfy the span-algebra invariants
(no backwards spans, children nested in parents and in start order,
events inside their span) plus flow conservation against the metrics
counters. The builders are also exercised directly with random
monotone timestamps.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.spans import (
    EXEC,
    QUEUE,
    ClusterTraceBuilder,
    QueryTraceBuilder,
    RecordingTracer,
)
from repro.policies.adaptive import ThresholdTable
from repro.policies.fixed import FixedPolicy
from repro.policies.incremental import IncrementalPolicy
from repro.sim.engine import Simulator
from repro.sim.faults import CRASH, FaultSchedule, FaultWindow
from repro.sim.metrics import MetricsCollector
from repro.sim.oracle import ServiceOracle
from repro.sim.server import IndexServerModel

from tests.test_sim_server import _constant_table


def _make_policy(choice):
    if choice == "incremental":
        table = ThresholdTable.from_pairs([(2, 4), (4, 2)])
        return IncrementalPolicy(table, probe_time=0.1)
    return FixedPolicy(choice)


schedule = st.lists(
    st.floats(0.0, 5.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=25,
)
policy_choice = st.sampled_from([1, 2, 4, "incremental"])
deadline_choice = st.one_of(st.none(), st.floats(0.3, 2.0))
queue_cap_choice = st.one_of(st.none(), st.integers(1, 4))
fault_choice = st.one_of(
    st.none(),
    st.tuples(
        st.floats(0.0, 3.0),  # start
        st.floats(0.1, 2.0),  # length
        st.sampled_from([4.0, CRASH]),
    ),
)


@settings(max_examples=40, deadline=None)
@given(
    arrivals=schedule,
    policy=policy_choice,
    deadline=deadline_choice,
    queue_cap=queue_cap_choice,
    fault=fault_choice,
    n_cores=st.integers(1, 4),
)
def test_server_traces_hold_invariants(
    arrivals, policy, deadline, queue_cap, fault, n_cores
):
    oracle = ServiceOracle(_constant_table(t1=0.4))
    simulator = Simulator()
    metrics = MetricsCollector(warmup=0.0, horizon=50.0, n_cores=n_cores)
    tracer = RecordingTracer()
    faults = None
    if fault is not None:
        start, length, multiplier = fault
        faults = FaultSchedule(
            [FaultWindow(start, start + length, multiplier=multiplier)]
        )
    server = IndexServerModel(
        simulator, oracle, _make_policy(policy), n_cores, metrics,
        deadline=deadline, max_queue_length=queue_cap, faults=faults,
        tracer=tracer,
    )
    for i, t in enumerate(arrivals):
        simulator.schedule_at(t, lambda i=i: server.submit(i % oracle.n_queries))
    simulator.run()

    traces = tracer.traces
    # Conservation: the run drained, so every arrival left exactly one
    # trace, and the split matches the metrics counters.
    flows = metrics.conservation()
    assert flows["in_flight"] == 0
    assert len(traces) == flows["issued"] == len(arrivals)
    assert sum(t.completed for t in traces) == flows["completed"]
    assert sum(t.shed_reason is not None for t in traces) == flows["shed"]

    for trace in traces:
        # The span algebra holds on every tree.
        trace.root.validate()
        # Event timestamps never run backwards.
        times = [e.time_s for e in trace.root.events]
        assert times == sorted(times)
        assert trace.completed != (trace.shed_reason is not None)
        if trace.completed:
            # Queue and exec tile the whole lifetime.
            queue = trace.root.child(QUEUE)
            execution = trace.root.child(EXEC)
            assert queue.end_s == execution.start_s
            assert math.isclose(
                trace.queue_delay_s() + trace.service_s(),
                trace.latency_s,
                abs_tol=1e-12,
            )
            # Phases partition the exec span's busy time back-to-back.
            phases = execution.children
            assert phases
            for earlier, later in zip(phases, phases[1:]):
                assert later.start_s >= earlier.end_s


monotone_times = st.lists(
    st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
    min_size=4,
    max_size=12,
).map(sorted)


@settings(max_examples=60, deadline=None)
@given(times=monotone_times, n_phases=st.integers(1, 4))
def test_builder_accepts_any_monotone_schedule(times, n_phases):
    arrival, start = times[0], times[1]
    builder = QueryTraceBuilder(0, 3, arrival)
    builder.degree_granted(start, requested=4, granted=2, free_cores=4)
    # Lay phases back-to-back inside the remaining timestamps.
    body = times[1:]
    end = body[-1]
    for i in range(n_phases):
        lo = body[min(i, len(body) - 1)]
        hi = body[min(i + 1, len(body) - 1)]
        builder.phase_started(lo, degree=2)
        builder.phase_ended(hi)
    trace = builder.completed(end)
    trace.root.validate()
    # The builder copies timestamps verbatim; no arithmetic, so exact.
    assert trace.arrival_s == arrival  # reprolint: disable=R004 -- verbatim copy, not computed
    assert trace.completion_s == end  # reprolint: disable=R004 -- verbatim copy, not computed
    assert math.isclose(
        trace.queue_delay_s() + trace.service_s(), trace.latency_s,
        rel_tol=1e-12, abs_tol=1e-12,
    )


@settings(max_examples=60, deadline=None)
@given(
    arrival=st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False),
    offsets=st.lists(st.floats(0.0, 5.0), min_size=1, max_size=6),
    n_responded=st.integers(0, 6),
    quorum=st.one_of(st.none(), st.integers(1, 6)),
)
def test_cluster_builder_always_produces_valid_trees(
    arrival, offsets, n_responded, quorum
):
    n_shards = len(offsets)
    builder = ClusterTraceBuilder(0, arrival, n_shards)
    for shard, offset in enumerate(offsets):
        builder.shard_submitted(arrival + offset, shard, query_index=shard)
    finalize = arrival + max(offsets) + 1.0
    for shard in range(min(n_responded, n_shards)):
        builder.shard_responded(arrival + offsets[shard] + 0.5, shard)
    responded = min(n_responded, n_shards)
    outcome = (
        "failed" if responded == 0
        else "full" if responded == n_shards
        else "partial"
    )
    trace = builder.finalized(
        finalize, outcome, responded, n_shards,
        timed_out=responded < n_shards, quorum=quorum,
    )
    trace.root.validate()
    assert len(trace.root.children) == n_shards
    won = sum(s.attrs["outcome"] == "won" for s in trace.root.children)
    abandoned = sum(
        s.attrs["outcome"] == "abandoned" for s in trace.root.children
    )
    assert won == responded
    assert won + abandoned == n_shards

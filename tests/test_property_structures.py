"""Property-based tests on core data structures and estimators."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.percentiles import P2QuantileEstimator
from repro.engine.query import Query
from repro.index.chunks import ChunkMap
from repro.index.postings import PostingList
from repro.policies.adaptive import ThresholdTable
from repro.sim.engine import Simulator
from repro.text.zipf import ZipfMandelbrot


# ---------------------------------------------------------------------------
# ChunkMap
# ---------------------------------------------------------------------------

@given(n_docs=st.integers(1, 5_000), chunk_size=st.integers(1, 600))
@settings(max_examples=150, deadline=None)
def test_chunkmap_partitions_exactly(n_docs, chunk_size):
    cm = ChunkMap(n_docs, chunk_size)
    lengths = cm.chunk_lengths()
    assert lengths.sum() == n_docs
    assert np.all(lengths >= 1)
    assert np.all(lengths <= chunk_size)


@given(n_docs=st.integers(1, 5_000), chunk_size=st.integers(1, 600),
       data=st.data())
@settings(max_examples=100, deadline=None)
def test_chunkmap_doc_lookup_consistent(n_docs, chunk_size, data):
    cm = ChunkMap(n_docs, chunk_size)
    doc_id = data.draw(st.integers(0, n_docs - 1))
    chunk = cm.chunk_of_doc(doc_id)
    start, end = cm.chunk_range(chunk)
    assert start <= doc_id < end


# ---------------------------------------------------------------------------
# PostingList
# ---------------------------------------------------------------------------

posting_sets = st.lists(st.integers(0, 999), min_size=1, max_size=80,
                        unique=True).map(sorted)


@given(doc_ids=posting_sets, data=st.data())
@settings(max_examples=100, deadline=None)
def test_posting_chunk_metadata_consistent(doc_ids, data):
    chunk_size = data.draw(st.integers(1, 200))
    cm = ChunkMap(1000, chunk_size)
    doc_arr = np.asarray(doc_ids, dtype=np.int64)
    impacts = data.draw(
        arrays(np.float64, len(doc_ids),
               elements=st.floats(0.001, 100.0, allow_nan=False)))
    plist = PostingList(0, doc_arr, np.ones_like(doc_arr), impacts, cm)

    # Slices tile the postings and respect chunk ranges.
    seen = []
    for chunk_id in range(cm.n_chunks):
        ids, imp = plist.chunk_slice(chunk_id)
        start, end = cm.chunk_range(chunk_id)
        assert np.all((ids >= start) & (ids < end))
        seen.extend(ids.tolist())
        # Chunk maximum matches the slice maximum.
        if ids.shape[0]:
            assert plist.chunk_upper_bound(chunk_id) == imp.max()
    assert seen == doc_ids

    # Suffix bounds are the running maxima from each chunk onwards.
    bounds = plist.suffix_upper_bounds(cm.n_chunks)
    for chunk_id in range(cm.n_chunks):
        tail_max = 0.0
        for later in range(chunk_id, cm.n_chunks):
            _, imp = plist.chunk_slice(later)
            if imp.shape[0]:
                tail_max = max(tail_max, float(imp.max()))
        assert bounds[chunk_id] == tail_max


# ---------------------------------------------------------------------------
# Zipf sampler
# ---------------------------------------------------------------------------

@given(size=st.integers(1, 2000),
       exponent=st.floats(0.2, 3.0, allow_nan=False),
       shift=st.floats(0.0, 10.0, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_zipf_pmf_valid_distribution(size, exponent, shift):
    z = ZipfMandelbrot(size, exponent, shift)
    pmf = z.pmf_array()
    assert np.isclose(pmf.sum(), 1.0)
    assert np.all(pmf > 0)
    assert np.all(np.diff(pmf) <= 1e-18)


# ---------------------------------------------------------------------------
# P² streaming percentile vs numpy
# ---------------------------------------------------------------------------

@given(
    samples=st.lists(st.floats(0.001, 1e4, allow_nan=False), min_size=200,
                     max_size=2000),
    quantile=st.sampled_from([0.25, 0.5, 0.75, 0.9]),
)
@settings(max_examples=50, deadline=None)
def test_p2_tracks_exact_quantile(samples, quantile):
    estimator = P2QuantileEstimator(quantile)
    estimator.add_many(samples)
    exact = float(np.percentile(samples, quantile * 100))
    spread = max(samples) - min(samples)
    assume(spread > 0)
    # P² is approximate; assert it lands within 15% of the value range.
    assert abs(estimator.value() - exact) <= 0.15 * spread


# ---------------------------------------------------------------------------
# Query normalization
# ---------------------------------------------------------------------------

@given(terms=st.lists(st.integers(0, 10_000), min_size=1, max_size=12))
@settings(max_examples=100, deadline=None)
def test_query_terms_sorted_unique(terms):
    q = Query.of(terms)
    assert list(q.term_ids) == sorted(set(terms))


# ---------------------------------------------------------------------------
# ThresholdTable monotone lookup
# ---------------------------------------------------------------------------

@given(data=st.data())
@settings(max_examples=100, deadline=None)
def test_threshold_table_lookup_monotone(data):
    n_entries = data.draw(st.integers(1, 5))
    limits = sorted(data.draw(
        st.lists(st.integers(1, 50), min_size=n_entries, max_size=n_entries,
                 unique=True)))
    degrees = sorted(data.draw(
        st.lists(st.integers(1, 64), min_size=n_entries, max_size=n_entries,
                 unique=True)), reverse=True)
    table = ThresholdTable.from_pairs(list(zip(limits, degrees)))
    picks = [table.degree_for(n) for n in range(1, max(limits) + 5)]
    assert picks == sorted(picks, reverse=True)
    assert picks[-1] == 1 or limits[-1] >= len(picks)


# ---------------------------------------------------------------------------
# Simulator event ordering
# ---------------------------------------------------------------------------

@given(times=st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1,
                      max_size=60))
@settings(max_examples=100, deadline=None)
def test_simulator_fires_in_nondecreasing_time(times):
    sim = Simulator()
    fired = []
    for t in times:
        sim.schedule_at(t, lambda t=t: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(times)

"""Direct unit tests of the termination state machine."""

import pytest

from repro.engine.plan import QueryPlan
from repro.engine.query import Query
from repro.engine.termination import TerminationConfig, TerminationState
from repro.engine.topk import TopK


@pytest.fixture()
def plan(tiny_index):
    import numpy as np

    df = tiny_index.lexicon.document_frequencies()
    common = int(np.argmax(df))
    return QueryPlan(Query.of([common], k=5), tiny_index)


class TestTerminationState:
    def test_exhaustion_fires_at_end(self, plan):
        state = TerminationState(
            TerminationConfig(match_budget=None, use_score_bound=False),
            plan,
            TopK(5),
        )
        assert not state.should_stop(0)
        assert state.should_stop(plan.n_candidate_chunks)
        assert state.fired_rule == "exhausted"
        assert not state.terminated_early

    def test_budget_fires_once_enough_matches(self, plan):
        state = TerminationState(
            TerminationConfig(match_budget=10, use_score_bound=False),
            plan,
            TopK(5),
        )
        state.record_matches(9)
        assert not state.should_stop(0)
        state.record_matches(1)
        assert state.should_stop(0)
        assert state.fired_rule == "match_budget"
        assert state.terminated_early

    def test_budget_never_below_k(self, plan):
        """A budget below k cannot stop before the heap can fill."""
        topk = TopK(5)
        state = TerminationState(
            TerminationConfig(match_budget=1, use_score_bound=False),
            plan,
            topk,
        )
        state.record_matches(3)  # >= budget but < k
        assert not state.should_stop(0)
        state.record_matches(2)  # now >= k
        assert state.should_stop(0)

    def test_score_bound_requires_full_heap(self, plan):
        state = TerminationState(
            TerminationConfig(match_budget=None, use_score_bound=True),
            plan,
            TopK(5),
        )
        # Heap empty: bound rule must not fire regardless of bounds.
        assert not state.should_stop(0)

    def test_score_bound_fires_when_threshold_exceeds_bound(self, plan):
        topk = TopK(1)
        giant = plan.bound_from_position(0) + 1.0
        topk.offer(giant, 0)
        state = TerminationState(
            TerminationConfig(match_budget=None, use_score_bound=True),
            plan,
            topk,
        )
        assert state.should_stop(0)
        assert state.fired_rule == "score_bound"
        assert state.terminated_early

    def test_fired_rule_is_sticky(self, plan):
        state = TerminationState(
            TerminationConfig(match_budget=5, use_score_bound=False),
            plan,
            TopK(5),
        )
        state.record_matches(100)
        assert state.should_stop(0)
        # Still stopped even for earlier positions / repeated calls.
        assert state.should_stop(0)
        assert state.fired_rule == "match_budget"

    def test_config_validation(self):
        with pytest.raises(Exception):
            TerminationConfig(match_budget=0)
        # None budget is the exhaustive configuration.
        assert TerminationConfig(match_budget=None).match_budget is None

    def test_config_flags_must_be_booleans(self):
        # A stray positional int landing in a flag slot must not silently
        # enable a rule with a truthy garbage value.
        with pytest.raises(Exception):
            TerminationConfig(match_budget=None, use_score_bound=1)
        with pytest.raises(Exception):
            TerminationConfig(match_budget=None, skip_chunks=1)

    def test_all_rules_off_is_valid_and_exhaustive(self):
        config = TerminationConfig(
            match_budget=None, use_score_bound=False, skip_chunks=False
        )
        assert config.is_exhaustive
        assert not TerminationConfig().is_exhaustive
        assert not TerminationConfig(
            match_budget=None, use_score_bound=False, skip_chunks=True
        ).is_exhaustive

    def test_would_stop_is_pure(self, plan):
        state = TerminationState(
            TerminationConfig(match_budget=5, use_score_bound=False),
            plan,
            TopK(5),
        )
        state.record_matches(100)
        assert state.would_stop(0) == "match_budget"
        assert state.fired_rule is None  # lookahead committed nothing
        assert state.should_stop(0)
        assert state.fired_rule == "match_budget"

    def test_skip_requires_configuration_and_full_heap(self, plan):
        topk = TopK(5)
        off = TerminationState(
            TerminationConfig(match_budget=None, use_score_bound=False),
            plan,
            topk,
        )
        assert not off.should_skip(0)  # rule not enabled
        on = TerminationState(
            TerminationConfig(
                match_budget=None, use_score_bound=False, skip_chunks=True
            ),
            plan,
            topk,
        )
        assert not on.should_skip(0)  # heap not full yet

    def test_skip_fires_when_chunk_bound_beaten(self, plan):
        topk = TopK(1)
        topk.offer(plan.chunk_bound(0) + 1.0, 0)
        state = TerminationState(
            TerminationConfig(
                match_budget=None, use_score_bound=False, skip_chunks=True
            ),
            plan,
            topk,
        )
        assert state.should_skip(0)
        # Skipping is not stopping: no rule fires and the scan continues.
        assert state.fired_rule is None

    def test_chunk_bound_validation(self, plan):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            plan.chunk_bound(-1)
        with pytest.raises(ExecutionError):
            plan.chunk_bound(plan.n_candidate_chunks)

    def test_chunk_bounds_dominated_by_suffix_bounds(self, plan):
        # The suffix bound at i covers chunks i..end, so each individual
        # chunk bound can never exceed it.
        import numpy as np

        assert np.all(
            plan.chunk_bounds <= plan.bounds_from[: plan.n_candidate_chunks]
        )

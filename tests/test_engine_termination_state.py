"""Direct unit tests of the termination state machine."""

import pytest

from repro.engine.plan import QueryPlan
from repro.engine.query import Query
from repro.engine.termination import TerminationConfig, TerminationState
from repro.engine.topk import TopK


@pytest.fixture()
def plan(tiny_index):
    import numpy as np

    df = tiny_index.lexicon.document_frequencies()
    common = int(np.argmax(df))
    return QueryPlan(Query.of([common], k=5), tiny_index)


class TestTerminationState:
    def test_exhaustion_fires_at_end(self, plan):
        state = TerminationState(
            TerminationConfig(match_budget=None, use_score_bound=False),
            plan,
            TopK(5),
        )
        assert not state.should_stop(0)
        assert state.should_stop(plan.n_candidate_chunks)
        assert state.fired_rule == "exhausted"
        assert not state.terminated_early

    def test_budget_fires_once_enough_matches(self, plan):
        state = TerminationState(
            TerminationConfig(match_budget=10, use_score_bound=False),
            plan,
            TopK(5),
        )
        state.record_matches(9)
        assert not state.should_stop(0)
        state.record_matches(1)
        assert state.should_stop(0)
        assert state.fired_rule == "match_budget"
        assert state.terminated_early

    def test_budget_never_below_k(self, plan):
        """A budget below k cannot stop before the heap can fill."""
        topk = TopK(5)
        state = TerminationState(
            TerminationConfig(match_budget=1, use_score_bound=False),
            plan,
            topk,
        )
        state.record_matches(3)  # >= budget but < k
        assert not state.should_stop(0)
        state.record_matches(2)  # now >= k
        assert state.should_stop(0)

    def test_score_bound_requires_full_heap(self, plan):
        state = TerminationState(
            TerminationConfig(match_budget=None, use_score_bound=True),
            plan,
            TopK(5),
        )
        # Heap empty: bound rule must not fire regardless of bounds.
        assert not state.should_stop(0)

    def test_score_bound_fires_when_threshold_exceeds_bound(self, plan):
        topk = TopK(1)
        giant = plan.bound_from_position(0) + 1.0
        topk.offer(giant, 0)
        state = TerminationState(
            TerminationConfig(match_budget=None, use_score_bound=True),
            plan,
            topk,
        )
        assert state.should_stop(0)
        assert state.fired_rule == "score_bound"
        assert state.terminated_early

    def test_fired_rule_is_sticky(self, plan):
        state = TerminationState(
            TerminationConfig(match_budget=5, use_score_bound=False),
            plan,
            TopK(5),
        )
        state.record_matches(100)
        assert state.should_stop(0)
        # Still stopped even for earlier positions / repeated calls.
        assert state.should_stop(0)
        assert state.fired_rule == "match_budget"

    def test_config_validation(self):
        with pytest.raises(Exception):
            TerminationConfig(match_budget=0)
        # None budget is the exhaustive configuration.
        assert TerminationConfig(match_budget=None).match_budget is None

"""Tests for ExecutionResult accounting and the ChunkTrace cache."""

import pytest

from repro.engine.query import Query
from repro.engine.results import ExecutionResult, RankedDocument, make_ranked
from repro.engine.trace import ChunkTrace


class TestRankedResults:
    def test_make_ranked_assigns_ranks(self):
        ranked = make_ranked([(5, 2.0), (3, 1.0)])
        assert [r.rank for r in ranked] == [1, 2]
        assert ranked[0] == RankedDocument(doc_id=5, score=2.0, rank=1)

    def _result(self, latency, cpu, degree=2):
        return ExecutionResult(
            query=Query.of([1]),
            degree=degree,
            results=make_ranked([(1, 1.0)]),
            latency=latency,
            cpu_time=cpu,
            chunks_evaluated=3,
            postings_scanned=10,
            docs_matched=2,
            terminated_early=False,
            termination_rule="exhausted",
        )

    def test_efficiency_vs(self):
        result = self._result(latency=1.0, cpu=1.8)
        assert result.efficiency_vs == pytest.approx(1.8)

    def test_speedup_over(self):
        sequential = self._result(latency=2.0, cpu=2.0, degree=1)
        parallel = self._result(latency=0.5, cpu=1.5, degree=4)
        assert parallel.speedup_over(sequential) == pytest.approx(4.0)

    def test_accessors(self):
        result = self._result(1.0, 1.0)
        assert result.doc_ids == [1]
        assert result.scores == [1.0]
        assert result.n_results == 1


class TestChunkTrace:
    def test_caches_chunk_evaluations(self, small_engine, sample_queries):
        query = next(q for q in sample_queries
                     if small_engine.plan(q).n_candidate_chunks >= 3)
        trace = small_engine.trace(query)
        assert trace.n_evaluated == 0
        first_outcome, first_cost = trace.get(0)
        assert trace.n_evaluated == 1
        again_outcome, again_cost = trace.get(0)
        assert again_outcome is first_outcome
        assert again_cost == first_cost

    def test_shared_trace_across_degrees_limits_work(
        self, small_engine, sample_queries
    ):
        query = sample_queries[0]
        trace = small_engine.trace(query)
        small_engine.execute_trace(trace, 1)
        evaluated_after_sequential = trace.n_evaluated
        small_engine.execute_trace(trace, 4)
        # Degree 4 may claim a few extra (waste) chunks but re-uses all
        # sequentially evaluated ones.
        assert trace.n_evaluated >= evaluated_after_sequential
        assert trace.n_evaluated <= trace.n_positions

    def test_cost_matches_cost_model(self, small_engine, sample_queries):
        query = sample_queries[1]
        trace = small_engine.trace(query)
        if trace.n_positions == 0:
            pytest.skip("query matched nothing")
        outcome, cost = trace.get(0)
        assert cost == pytest.approx(
            small_engine.config.cost_model.chunk_time(outcome)
        )

"""Tests for ExecutionResult accounting and the ChunkTrace cache."""

import pytest

from repro.engine.query import Query
from repro.engine.results import ExecutionResult, RankedDocument, make_ranked
from repro.engine.trace import ChunkTrace


class TestRankedResults:
    def test_make_ranked_assigns_ranks(self):
        ranked = make_ranked([(5, 2.0), (3, 1.0)])
        assert [r.rank for r in ranked] == [1, 2]
        assert ranked[0] == RankedDocument(doc_id=5, score=2.0, rank=1)

    def _result(self, latency, cpu, degree=2):
        return ExecutionResult(
            query=Query.of([1]),
            degree=degree,
            results=make_ranked([(1, 1.0)]),
            latency=latency,
            cpu_time=cpu,
            chunks_evaluated=3,
            postings_scanned=10,
            docs_matched=2,
            terminated_early=False,
            termination_rule="exhausted",
        )

    def test_efficiency_vs(self):
        result = self._result(latency=1.0, cpu=1.8)
        assert result.efficiency_vs == pytest.approx(1.8)

    def test_speedup_over(self):
        sequential = self._result(latency=2.0, cpu=2.0, degree=1)
        parallel = self._result(latency=0.5, cpu=1.5, degree=4)
        assert parallel.speedup_over(sequential) == pytest.approx(4.0)

    def test_accessors(self):
        result = self._result(1.0, 1.0)
        assert result.doc_ids == [1]
        assert result.scores == [1.0]
        assert result.n_results == 1


class TestChunkTrace:
    def test_caches_chunk_evaluations(self, small_engine, sample_queries):
        query = next(q for q in sample_queries
                     if small_engine.plan(q).n_candidate_chunks >= 3)
        trace = small_engine.trace(query)
        assert trace.n_evaluated == 0
        first_outcome, first_cost = trace.get(0)
        assert trace.n_evaluated == 1
        again_outcome, again_cost = trace.get(0)
        assert again_outcome is first_outcome
        assert again_cost == first_cost

    def test_shared_trace_across_degrees_limits_work(
        self, small_engine, sample_queries
    ):
        query = sample_queries[0]
        trace = small_engine.trace(query)
        small_engine.execute_trace(trace, 1)
        evaluated_after_sequential = trace.n_evaluated
        small_engine.execute_trace(trace, 4)
        # Degree 4 may claim a few extra (waste) chunks but re-uses all
        # sequentially evaluated ones.
        assert trace.n_evaluated >= evaluated_after_sequential
        assert trace.n_evaluated <= trace.n_positions

    def test_cost_matches_cost_model(self, small_engine, sample_queries):
        query = sample_queries[1]
        trace = small_engine.trace(query)
        if trace.n_positions == 0:
            pytest.skip("query matched nothing")
        outcome, cost = trace.get(0)
        assert cost == pytest.approx(
            small_engine.config.cost_model.chunk_time(outcome)
        )


class TestChunkTraceStats:
    def test_lookup_and_hit_counters(self, small_engine, sample_queries):
        trace = small_engine.trace(sample_queries[0])
        assert trace.n_lookups == 0 and trace.n_hits == 0
        trace.get(0)
        assert (trace.n_lookups, trace.n_hits) == (1, 0)
        trace.get(0)
        assert (trace.n_lookups, trace.n_hits) == (2, 1)
        trace.get(1)
        assert (trace.n_lookups, trace.n_hits) == (3, 1)

    def test_shared_trace_hits_across_degrees(self, small_engine, sample_queries):
        trace = small_engine.trace(sample_queries[2])
        small_engine.execute_trace(trace, 1)
        small_engine.execute_trace(trace, 4)
        # The second execution re-reads every chunk the first one
        # evaluated; re-reads are hits, so hits < lookups.
        assert trace.n_hits > 0
        assert trace.n_lookups == trace.n_evaluated + trace.n_hits


class TestChunkSpans:
    def _spanning_query(self, small_engine, sample_queries, min_chunks=4):
        return next(
            q for q in sample_queries
            if small_engine.plan(q).n_candidate_chunks >= min_chunks
        )

    def test_sequential_execution_has_no_spans(self, small_engine, sample_queries):
        result = small_engine.execute(sample_queries[0], 1, collect_spans=True)
        assert result.chunk_spans is None
        assert result.termination_s is None

    def test_spans_off_by_default(self, small_engine, sample_queries):
        result = small_engine.execute(sample_queries[0], 4)
        assert result.chunk_spans is None

    def test_collection_does_not_change_the_result(
        self, small_engine, sample_queries
    ):
        query = self._spanning_query(small_engine, sample_queries)
        plain = small_engine.execute(query, 4)
        spanned = small_engine.execute(query, 4, collect_spans=True)
        assert spanned.results == plain.results
        # Bit-identical by design: span collection must not perturb the
        # schedule, so exact float equality is the property under test.
        assert spanned.latency == plain.latency  # reprolint: disable=R004 -- bit-identity is the property
        assert spanned.cpu_time == plain.cpu_time  # reprolint: disable=R004 -- bit-identity is the property
        assert spanned.chunks_evaluated == plain.chunks_evaluated
        assert spanned.worker_busy == plain.worker_busy
        assert spanned.terminated_early == plain.terminated_early

    def test_one_span_per_claimed_chunk(self, small_engine, sample_queries):
        query = self._spanning_query(small_engine, sample_queries)
        result = small_engine.execute(query, 4, collect_spans=True)
        spans = result.chunk_spans
        assert len(spans) == result.chunks_evaluated
        # Chunks are claimed in document order starting at position 0.
        assert sorted(s.position for s in spans) == list(range(len(spans)))
        assert all(s.duration_s > 0 for s in spans)
        assert all(0 <= s.worker < 4 for s in spans)

    def test_spans_tile_each_worker_without_overlap(
        self, small_engine, sample_queries
    ):
        query = self._spanning_query(small_engine, sample_queries)
        result = small_engine.execute(query, 4, collect_spans=True)
        by_worker = {}
        for span in result.chunk_spans:
            by_worker.setdefault(span.worker, []).append(span)
        for spans in by_worker.values():
            spans.sort(key=lambda s: s.start_s)
            for earlier, later in zip(spans, spans[1:]):
                # The gap is the merge step; claims never overlap.
                assert later.start_s >= earlier.end_s

    def test_termination_marked_only_on_early_exit(
        self, small_engine, sample_queries
    ):
        for query in sample_queries[:20]:
            if small_engine.plan(query).n_candidate_chunks < 2:
                continue
            result = small_engine.execute(query, 2, collect_spans=True)
            if result.terminated_early:
                assert result.termination_s is not None
                assert result.termination_s >= 0
            else:
                assert result.termination_s is None
